//! Streaming archive restripes: the conventional-upgrade cost, paid lazily.
//!
//! Growing an *ideal* RAID-5 onto more disks (the conventional baseline the
//! paper compares CRAID against, and the archive partition of the
//! `CRAID-5`/`CRAID-5ssd` strategies) must move nearly every used block to
//! its reshaped location — an mdadm-style reshape. A paced restripe used to
//! materialise that whole move set as a `Vec<u64>` plus a per-block pending
//! map at event time: O(dataset) allocations that defeat the point of
//! pacing at paper-scale footprints.
//!
//! [`RestripeState`] replaces both with O(1) state: a **logical cursor**
//! over [`craid_raid::migration_stream_from`] (the reshape's moves in
//! ascending order) plus a small **superseded set** holding only the
//! pending blocks client writes have already rewritten at their new home.
//! Membership of the pending set is *computed*, not stored: a block is
//! pending iff it is ahead of the cursor, its location differs between the
//! old and new layouts, and no write superseded it. The owning array keeps
//! the pre-upgrade [`Partition`] alive for the restripe's lifetime so
//! pending reads can be served from their old physical locations, and the
//! background engine tracks only the *count* of outstanding moves
//! ([`crate::background::TaskKind::ArchiveRestripe`], a
//! [`Work::Stream`](crate::background)-shaped task).

use std::collections::BTreeSet;

use craid_diskmodel::IoKind;
use craid_raid::{migration_stream_from, round_robin_migration_blocks, IoPurpose, Layout};

use crate::background::TaskId;
use crate::partition::{ArchiveLayout, Partition, PartitionIo};

/// The in-flight state of one paced archive restripe.
#[derive(Debug, Clone)]
pub struct RestripeState {
    /// The engine task streaming this restripe.
    pub task: TaskId,
    /// The pre-upgrade volume; pending blocks still live here.
    pub old: Partition<ArchiveLayout>,
    /// Logical blocks `[0, used)` participate in the reshape (the stored
    /// dataset; the tail of the address space holds no data to move).
    used: u64,
    /// Next logical block the background walk will examine. Everything
    /// below it has been moved (or skipped as superseded).
    cursor: u64,
    /// Pending blocks client writes rewrote at their new home — they no
    /// longer need background I/O. Entries are dropped as the cursor
    /// passes them, so the set is bounded by the writes in flight, never by
    /// the dataset.
    superseded: BTreeSet<u64>,
    /// Size of the full move set, counted once (O(1) memory) at creation.
    total_moves: u64,
    /// Moves the background engine has issued.
    pub migrated: u64,
    /// Moves client writes superseded.
    pub superseded_count: u64,
    /// Supersessions not yet reported to the engine via
    /// [`BackgroundEngine::forfeit`](crate::background::BackgroundEngine::forfeit).
    unreported_forfeits: u64,
}

impl RestripeState {
    /// Prepares a restripe from `old` to `new` over the first `used`
    /// logical blocks, counting (without materialising) the move set.
    /// `task` is filled in by the caller once the engine task exists.
    pub fn new(old: Partition<ArchiveLayout>, new: &Partition<ArchiveLayout>, used: u64) -> Self {
        let used = used.min(old.data_capacity()).min(new.data_capacity());
        let total_moves = round_robin_migration_blocks(old.layout(), new.layout(), used);
        RestripeState {
            task: 0,
            old,
            used,
            cursor: 0,
            superseded: BTreeSet::new(),
            total_moves,
            migrated: 0,
            superseded_count: 0,
            unreported_forfeits: 0,
        }
    }

    /// Size of the full move set.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Moves neither issued nor superseded yet.
    pub fn pending(&self) -> u64 {
        self.total_moves - self.migrated - self.superseded_count
    }

    /// True if `block`'s authoritative copy still sits at its pre-upgrade
    /// location (reads must resolve through [`RestripeState::old`]).
    pub fn is_pending(&self, current: &Partition<ArchiveLayout>, block: u64) -> bool {
        block >= self.cursor
            && block < self.used
            && !self.superseded.contains(&block)
            && self.old.layout().locate(block) != current.layout().locate(block)
    }

    /// Records that a client write rewrote `block` at its new home. Returns
    /// true (and counts the supersession) if the block was pending.
    pub fn supersede(&mut self, current: &Partition<ArchiveLayout>, block: u64) -> bool {
        if !self.is_pending(current, block) {
            return false;
        }
        self.superseded.insert(block);
        self.superseded_count += 1;
        self.unreported_forfeits += 1;
        true
    }

    /// Supersessions accumulated since the last call — the caller forwards
    /// them to the engine as forfeited stream work.
    pub fn take_forfeits(&mut self) -> u64 {
        std::mem::take(&mut self.unreported_forfeits)
    }

    /// Advances the cursor to produce the next `budget` moves (ascending
    /// logical order) of the reshape towards `current` (the array's live,
    /// post-upgrade volume — stable for the restripe's lifetime because
    /// further expansions queue behind an in-flight restripe). Superseded
    /// entries are skipped without counting against the budget and pruned
    /// from the set as the cursor passes them. The engine already accounted
    /// `budget` against this task's remaining work, so `budget` moves come
    /// back — fewer only when supersessions raced the poll that allocated
    /// the budget (their forfeits then saturate the engine's remaining
    /// count, so the two stay consistent).
    pub fn next_batch(&mut self, current: &Partition<ArchiveLayout>, budget: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(budget as usize);
        let mut walked = self.cursor;
        for unit in
            migration_stream_from(self.old.layout(), current.layout(), self.cursor, self.used)
        {
            walked = unit.logical + 1;
            if self.superseded.remove(&unit.logical) {
                continue; // already rewritten at the new home by a client
            }
            self.migrated += 1;
            out.push(unit.logical);
            if out.len() == budget as usize {
                break;
            }
        }
        if (out.len() as u64) < budget {
            walked = self.used; // the stream ran dry
        }
        self.cursor = walked;
        // Anything superseded below the new cursor can never be asked about
        // again; drop it so the set stays bounded by in-flight writes.
        self.superseded = self.superseded.split_off(&self.cursor);
        out
    }

    /// True when every move has been issued or superseded.
    pub fn drained(&self) -> bool {
        self.pending() == 0
    }

    /// Advances the cursor by `budget` moves and plans their device I/O:
    /// a [`MigrateRead`](craid_raid::IoPurpose::MigrateRead) of each
    /// block's pre-upgrade location plus a
    /// [`MigrateWrite`](craid_raid::IoPurpose::MigrateWrite) (parity
    /// maintenance included) at its reshaped home in `current`. Returns the
    /// number of moves issued with the plan — the one authoritative
    /// batch-to-I/O translation both arrays drive their restripes through.
    pub fn plan_batch(
        &mut self,
        current: &Partition<ArchiveLayout>,
        budget: u64,
    ) -> (u64, Vec<PartitionIo>) {
        let moved = self.next_batch(current, budget);
        // Usually exactly `budget` moves come back, but supersessions that
        // raced the poll which allocated the budget (e.g. a PC-migration
        // batch's write-backs earlier in the same pump) legitimately leave
        // a shortfall; their forfeits saturate the engine's remaining
        // count, so the two stay consistent either way.
        debug_assert!(
            moved.len() as u64 <= budget,
            "the restripe cursor never over-issues its budget"
        );
        let old_plan = self.old.plan_blocks(IoKind::Read, &moved);
        let mut ios: Vec<PartitionIo> = Vec::with_capacity(old_plan.len() * 2);
        for io in old_plan {
            ios.push(PartitionIo {
                purpose: IoPurpose::MigrateRead,
                ..io
            });
        }
        for io in current.plan_blocks(IoKind::Write, &moved) {
            ios.push(PartitionIo {
                purpose: if io.purpose == IoPurpose::Data {
                    IoPurpose::MigrateWrite
                } else {
                    io.purpose
                },
                ..io
            });
        }
        (moved.len() as u64, ios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::{migration_stream, Raid5Layout};

    fn volume(disks: usize) -> Partition<ArchiveLayout> {
        Partition::new(
            ArchiveLayout::Ideal(Raid5Layout::new(disks, 4, 4, 1024).unwrap()),
            0,
            0,
        )
    }

    #[test]
    fn cursor_walk_reproduces_the_full_move_set() {
        let old = volume(8);
        let new = volume(12);
        let used = 1_000;
        let expected: Vec<u64> = migration_stream(old.layout(), new.layout(), used)
            .map(|u| u.logical)
            .collect();
        let mut state = RestripeState::new(old, &new, used);
        assert_eq!(state.total_moves(), expected.len() as u64);
        assert_eq!(state.pending(), expected.len() as u64);
        let mut walked = Vec::new();
        while !state.drained() {
            let batch = state.next_batch(&new, 7);
            assert!(!batch.is_empty(), "a non-drained walk always progresses");
            walked.extend(batch);
        }
        assert_eq!(walked, expected, "the lazy walk equals the eager plan");
        assert_eq!(state.migrated, expected.len() as u64);
        assert!(state.next_batch(&new, 7).is_empty());
    }

    #[test]
    fn pending_membership_is_computed_not_stored() {
        let old = volume(8);
        let new = volume(12);
        let mut state = RestripeState::new(old, &new, 500);
        let moved: Vec<u64> = migration_stream(state.old.layout(), new.layout(), 500)
            .map(|u| u.logical)
            .collect();
        let first = moved[0];
        assert!(state.is_pending(&new, first));
        assert!(
            !state.is_pending(&new, 500),
            "blocks past the used range never move"
        );
        // Issue one batch past `first`: it is no longer pending.
        state.next_batch(&new, 1);
        assert!(!state.is_pending(&new, first));
        assert!(state.is_pending(&new, *moved.last().unwrap()));
    }

    #[test]
    fn supersession_skips_the_walk_and_reports_forfeits() {
        let old = volume(8);
        let new = volume(12);
        let mut state = RestripeState::new(old, &new, 300);
        let moved: Vec<u64> = migration_stream(state.old.layout(), new.layout(), 300)
            .map(|u| u.logical)
            .collect();
        let victim = moved[2];
        assert!(state.supersede(&new, victim));
        assert!(!state.supersede(&new, victim), "supersession is idempotent");
        assert!(!state.is_pending(&new, victim));
        assert_eq!(state.take_forfeits(), 1);
        assert_eq!(state.take_forfeits(), 0);
        // The walk never issues the superseded block.
        let mut walked = Vec::new();
        while !state.drained() {
            walked.extend(state.next_batch(&new, 64));
        }
        assert!(!walked.contains(&victim));
        assert_eq!(walked.len() as u64 + 1, state.total_moves());
        assert_eq!(state.superseded_count, 1);
        // Superseding an unmoving or already-walked block is a no-op.
        assert!(!state.supersede(&new, victim));
        assert_eq!(state.take_forfeits(), 0);
    }
}
