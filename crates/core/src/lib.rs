//! # craid
//!
//! A reproduction of **"CRAID: Online RAID Upgrades Using Dynamic Hot Data
//! Reorganization"** (A. Miranda, T. Cortés, FAST '14) as a Rust library.
//!
//! CRAID claims a small portion of every disk in a RAID array and uses it as
//! a **cache partition** (`PC`) holding copies of the blocks that are
//! currently hot; everything else stays in the **archive partition** (`PA`).
//! Because the hot set is a tiny fraction of the stored data, upgrading the
//! array (adding disks) only requires redistributing `PC` — the archive can
//! grow by simple aggregation — and because the hot set is physically
//! clustered, the array gains sequentiality and shorter seeks on precisely
//! the data clients care about.
//!
//! The crate provides:
//!
//! * the CRAID control path — [`MappingCache`], [`IoMonitor`],
//!   [`redirector`] — exactly as described in the paper's §3–4;
//! * simulated arrays for the six allocation policies of the evaluation
//!   ([`StrategyKind`]): ideal RAID-5, aggregated RAID-5+, CRAID over both,
//!   and CRAID with a dedicated SSD cache tier;
//! * a trace-replay [`Simulation`] driver that measures everything the
//!   paper's §5 reports: per-request response times, hit/eviction ratios,
//!   per-second load balance (cv), access sequentiality, queue depths and
//!   device concurrency, and upgrade migration volumes;
//! * a declarative experiment surface ([`scenario`]): serializable
//!   [`Scenario`]s with [`ScheduledEvent`] timelines (expansions, policy
//!   switches, phase markers, disk failures and repairs), pluggable
//!   [`Observer`]s, and a parallel [`Campaign`] runner for whole experiment
//!   matrices;
//! * a fault subsystem ([`fault`], [`DiskState`]): degraded-mode reads that
//!   reconstruct lost blocks from the surviving parity-group members, with
//!   the resulting [`FaultStats`] (degraded reads, rebuild traffic, MTTR)
//!   in every report;
//! * a generic [`background`] I/O engine ([`BackgroundEngine`]): rebuilds
//!   *and* paced online-expansion migrations ride on one rate-paced task
//!   queue with pluggable [`BackgroundPriority`] block ordering
//!   (`Sequential` or heat-ranked `HotFirst`), a [`MigrationMap`] keeping
//!   reads correct mid-upgrade, and [`MigrationStats`] (upgrade window,
//!   blocks moved) in every report;
//! * a QoS control subsystem ([`qos`]): a per-array [`SloSpec`] (client
//!   latency percentile and/or queue-depth targets, a maintenance-rate
//!   floor, AIMD gains) steers a [`QosController`] that adaptively
//!   throttles the background engine between the floor and the configured
//!   rates, with [`QosStats`] (throttle timeline, SLO-violation seconds,
//!   effective maintenance rate) in every report;
//! * a pre-run static analyser ([`analyze`]): storage-graph rules over
//!   the resolved configuration and a symbolic interpreter for event
//!   timelines, reporting every finding as a [`Diagnostic`] with a
//!   stable `CRAID-Exxx`/`CRAID-Wxxx` code — before any simulated I/O
//!   ([`Scenario::analyze`], [`Scenario::load`], `scenario_file
//!   --check`);
//! * a small-scope model checker ([`analyze::explore`], [`choice`]):
//!   exhaustive exploration of the scheduler's nondeterministic decision
//!   points (equal-timestamp event orders, fair-share splits, batch
//!   boundaries, throttle-vs-pump ordering, activation timing) on
//!   small-scope projections, judging every interleaving against the
//!   [`InvariantOracle`] library,
//!   shrinking counterexamples to reproducer TOMLs (`scenario_file
//!   --explore`).
//!
//! # Quick start
//!
//! ```
//! use craid::{ArrayConfig, Simulation, StrategyKind};
//! use craid_trace::{SyntheticWorkload, WorkloadId};
//!
//! // A heavily scaled-down wdev workload on a small CRAID-5 array.
//! let trace = SyntheticWorkload::paper(WorkloadId::Wdev).scale(100_000).generate(1);
//! let config = ArrayConfig::small_test(StrategyKind::Craid5, trace.footprint_blocks());
//! let report = Simulation::new(config).run(&trace);
//! assert!(report.requests > 0);
//! assert!(report.craid.is_some());
//! ```
//!
//! # Declaring experiments
//!
//! ```
//! use craid::{Campaign, Scenario, StrategyKind};
//! use craid_trace::WorkloadId;
//!
//! let base = Scenario::builder()
//!     .workload(WorkloadId::Wdev)
//!     .requests(1_000)
//!     .small_test()
//!     .build();
//! let outcomes = Campaign::sweep(
//!     &base,
//!     &[WorkloadId::Wdev],
//!     &[0.1, 0.2],
//!     &[StrategyKind::Raid5, StrategyKind::Craid5],
//! )
//! .run()
//! .unwrap();
//! assert_eq!(outcomes.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod array;
pub mod background;
pub mod choice;
pub mod config;
pub mod devices;
pub mod error;
pub mod fault;
pub mod mapping;
pub mod monitor;
pub mod observer;
pub mod partition;
pub mod qos;
pub mod redirector;
pub mod report;
pub mod restripe;
pub mod scenario;
pub mod sim;

pub use analyze::explore::{explore, Counterexample, Exploration, ExploreScope};
pub use analyze::oracle::{InvariantOracle, RunEvidence};
pub use analyze::{Analysis, Diagnostic, Severity};
pub use array::{
    ActivatedExpansion, BaselineArray, CraidArray, ExpansionReport, RequestReport, StorageArray,
};
pub use background::{BackgroundEngine, BackgroundPriority, MigrationMap};
pub use config::{ActivationPolicy, ArrayConfig, DeviceTier, StrategyKind};
pub use devices::DiskState;
pub use error::CraidError;
pub use mapping::MappingCache;
pub use monitor::IoMonitor;
pub use observer::{
    MetricsCollector, MultiObserver, NullObserver, Observer, ProgressObserver, RequestOutcome,
};
pub use partition::CachePartition;
pub use qos::{QosController, SloSpec};
pub use report::{CraidStats, FaultStats, MigrationStats, QosStats, SimulationReport};
pub use scenario::{
    AppliedEvent, ArrayPreset, ArraySpec, Campaign, ObserverSpec, Scenario, ScenarioBuilder,
    ScenarioOutcome, ScheduledEvent, WorkloadSource,
};
pub use sim::{policy_quality, DatasetMapper, PolicyQuality, Simulation};
