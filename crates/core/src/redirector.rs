//! The I/O redirector (paper §4.3 and Fig. 2).
//!
//! For every client request the redirector consults the mapping cache (via
//! the [`IoMonitor`]), splits multi-block I/Os as required, and produces the
//! physical I/O plan:
//!
//! * blocks with a cached copy are redirected to the cache partition;
//! * blocks without one are admitted — reads are served from the archive and
//!   copied to the cache partition in the background, writes go straight to
//!   the newly allocated cache slots;
//! * evictions triggered by admissions generate background write-back I/Os
//!   (read the dirty copy from `PC`, rewrite the original block and its
//!   parity in `PA`).
//!
//! Foreground I/Os are the ones the client waits for; background I/Os only
//! occupy devices and delay later requests, mirroring how CRAID interleaves
//! its maintenance work with normal operation.

use craid_diskmodel::{BlockRange, IoKind};

use crate::monitor::IoMonitor;
use crate::partition::{ArchiveLayout, CachePartition, Partition, PartitionIo};
use crate::restripe::RestripeState;

/// How the planner reaches the archive partition. While a paced archive
/// restripe is in flight, reads of blocks the reshape cursor has not
/// passed resolve through the preserved pre-upgrade volume, and writes —
/// which always land at the reshaped home — supersede the pending move
/// (the array forwards the accumulated supersessions to the background
/// engine as forfeited work after planning).
pub(crate) enum ArchiveAccess<'a> {
    /// No restripe in flight: all archive I/O targets the live volume.
    Plain(&'a Partition<ArchiveLayout>),
    /// Mid-restripe: split per block between the live volume and the
    /// preserved pre-upgrade one.
    Restriping {
        /// The live (post-upgrade) volume.
        current: &'a Partition<ArchiveLayout>,
        /// The in-flight reshape (owns the pre-upgrade volume).
        restripe: &'a mut RestripeState,
    },
}

impl ArchiveAccess<'_> {
    fn plan_reads(&self, blocks: &[u64]) -> Vec<PartitionIo> {
        match self {
            ArchiveAccess::Plain(pa) => pa.plan_blocks(IoKind::Read, blocks),
            ArchiveAccess::Restriping { current, restripe } => {
                let (pending, settled): (Vec<u64>, Vec<u64>) = blocks
                    .iter()
                    .partition(|&&b| restripe.is_pending(current, b));
                let mut plan = current.plan_blocks(IoKind::Read, &settled);
                plan.extend(restripe.old.plan_blocks(IoKind::Read, &pending));
                plan
            }
        }
    }

    fn plan_writes(&mut self, blocks: &[u64]) -> Vec<PartitionIo> {
        match self {
            ArchiveAccess::Plain(pa) => pa.plan_blocks(IoKind::Write, blocks),
            ArchiveAccess::Restriping { current, restripe } => {
                for &block in blocks {
                    restripe.supersede(current, block);
                }
                current.plan_blocks(IoKind::Write, blocks)
            }
        }
    }
}

/// Reusable per-block triage buffers for the planner. The replay hot loop
/// plans one request per trace record; owning these vectors across calls
/// (cleared, never shrunk) keeps the per-request path free of heap
/// allocations once the high-water marks are reached.
#[derive(Debug, Default)]
pub struct PlanScratch {
    hit_slots: Vec<u64>,
    admitted_slots: Vec<u64>,
    admitted_pa_blocks: Vec<u64>,
    writeback_pa_blocks: Vec<u64>,
    writeback_slots: Vec<u64>,
}

impl PlanScratch {
    fn clear(&mut self) {
        self.hit_slots.clear();
        self.admitted_slots.clear();
        self.admitted_pa_blocks.clear();
        self.writeback_pa_blocks.clear();
        self.writeback_slots.clear();
    }
}

/// The physical plan for one client request.
#[derive(Debug, Clone, Default)]
pub struct RequestPlan {
    /// I/Os the client's completion waits for.
    pub foreground: Vec<PartitionIo>,
    /// Maintenance I/Os issued alongside (copies into `PC`, eviction
    /// write-backs).
    pub background: Vec<PartitionIo>,
    /// Number of blocks served from an existing cached copy.
    pub cache_hit_blocks: u64,
    /// Number of blocks admitted into the cache partition by this request.
    pub admitted_blocks: u64,
    /// Number of evictions triggered.
    pub evictions: u64,
    /// Evictions whose victim was dirty (archive write-back needed).
    pub dirty_writebacks: u64,
}

/// Builds the I/O plan for one client request against a CRAID volume.
///
/// The monitor's policy and the cache partition's allocator are updated as a
/// side effect (admissions, evictions), exactly once per block of the
/// request.
pub fn plan_request(
    monitor: &mut IoMonitor,
    pc: &mut CachePartition,
    pa: &Partition<ArchiveLayout>,
    kind: IoKind,
    range: BlockRange,
) -> RequestPlan {
    plan_request_iter(
        monitor,
        pc,
        &mut ArchiveAccess::Plain(pa),
        kind,
        range.blocks(),
        range.len(),
        &mut PlanScratch::default(),
    )
}

/// [`plan_request`] against an [`ArchiveAccess`] — the arrays use this
/// while a paced archive restripe is in flight — with caller-owned triage
/// scratch so the hot loop allocates nothing per request.
pub(crate) fn plan_request_via(
    monitor: &mut IoMonitor,
    pc: &mut CachePartition,
    pa: &mut ArchiveAccess<'_>,
    kind: IoKind,
    range: BlockRange,
    scratch: &mut PlanScratch,
) -> RequestPlan {
    plan_request_iter(monitor, pc, pa, kind, range.blocks(), range.len(), scratch)
}

/// [`plan_request`] over an explicit block list: the arrays use this while
/// an expansion migration is in flight, when some of a request's blocks are
/// redirected to their pre-upgrade homes and only the rest flow through the
/// monitor. `request_blocks` is the size of the original client request (the
/// `S_i` the policies see), which may exceed `blocks.len()`.
pub fn plan_request_blocks(
    monitor: &mut IoMonitor,
    pc: &mut CachePartition,
    pa: &Partition<ArchiveLayout>,
    kind: IoKind,
    blocks: &[u64],
    request_blocks: u64,
) -> RequestPlan {
    plan_request_iter(
        monitor,
        pc,
        &mut ArchiveAccess::Plain(pa),
        kind,
        blocks.iter().copied(),
        request_blocks,
        &mut PlanScratch::default(),
    )
}

/// [`plan_request_blocks`] against an [`ArchiveAccess`], with caller-owned
/// triage scratch.
pub(crate) fn plan_request_blocks_via(
    monitor: &mut IoMonitor,
    pc: &mut CachePartition,
    pa: &mut ArchiveAccess<'_>,
    kind: IoKind,
    blocks: &[u64],
    request_blocks: u64,
    scratch: &mut PlanScratch,
) -> RequestPlan {
    plan_request_iter(
        monitor,
        pc,
        pa,
        kind,
        blocks.iter().copied(),
        request_blocks,
        scratch,
    )
}

#[allow(clippy::too_many_arguments)]
fn plan_request_iter(
    monitor: &mut IoMonitor,
    pc: &mut CachePartition,
    pa: &mut ArchiveAccess<'_>,
    kind: IoKind,
    blocks: impl Iterator<Item = u64>,
    request_blocks: u64,
    scratch: &mut PlanScratch,
) -> RequestPlan {
    let mut plan = RequestPlan::default();
    scratch.clear();

    for pa_block in blocks {
        let (decision, evictions) = monitor.access(pa_block, kind, request_blocks, pc);
        if decision.is_hit() {
            plan.cache_hit_blocks += 1;
            scratch.hit_slots.push(decision.slot());
        } else {
            plan.admitted_blocks += 1;
            scratch.admitted_slots.push(decision.slot());
            scratch.admitted_pa_blocks.push(pa_block);
        }
        for task in evictions {
            plan.evictions += 1;
            if task.dirty {
                plan.dirty_writebacks += 1;
                scratch.writeback_slots.push(task.pc_slot);
                scratch.writeback_pa_blocks.push(task.pa_block);
            }
        }
    }

    match kind {
        IoKind::Read => {
            // Cached blocks are read from PC, missing blocks from PA (from
            // their pre-reshape location while an archive restripe has not
            // reached them).
            plan.foreground
                .extend(pc.plan_blocks(IoKind::Read, &scratch.hit_slots));
            plan.foreground
                .extend(pa.plan_reads(&scratch.admitted_pa_blocks));
            // Copying the admitted blocks into their new PC slots happens in
            // the background (B.1 in the paper's control-flow figure).
            plan.background
                .extend(pc.plan_blocks(IoKind::Write, &scratch.admitted_slots));
        }
        IoKind::Write => {
            // Writes are always absorbed by the cache partition. Hit and
            // admitted slots merge in request order (hits first, matching
            // the historical plan order bit-for-bit).
            let admitted = std::mem::take(&mut scratch.admitted_slots);
            scratch.hit_slots.extend(&admitted);
            scratch.admitted_slots = admitted;
            plan.foreground
                .extend(pc.plan_blocks(IoKind::Write, &scratch.hit_slots));
        }
    }

    // Dirty evictions: read the stale copy back from PC and rewrite the
    // original data (and its parity) in the archive — the "4 additional
    // I/Os" of §5.1. Archive writes land at the reshaped home and
    // supersede any pending restripe move of the same block.
    plan.background
        .extend(pc.plan_blocks(IoKind::Read, &scratch.writeback_slots));
    plan.background
        .extend(pa.plan_writes(&scratch.writeback_pa_blocks));

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_cache::PolicyKind;
    use craid_raid::{IoPurpose, Raid5Layout};

    fn setup(pc_rows: u64) -> (IoMonitor, CachePartition, Partition<ArchiveLayout>) {
        let pc_layout = Raid5Layout::new(4, 4, 2, pc_rows * 2).unwrap();
        let pc = CachePartition::new(pc_layout, 0, 0);
        let pa_layout = ArchiveLayout::Ideal(Raid5Layout::new(4, 4, 2, 64).unwrap());
        let pa = Partition::new(pa_layout, 0, pc_rows * 2);
        let monitor = IoMonitor::new(PolicyKind::Wlru(0.5), pc.capacity());
        (monitor, pc, pa)
    }

    #[test]
    fn cold_read_fetches_from_archive_and_copies_to_cache() {
        let (mut monitor, mut pc, pa) = setup(4);
        let plan = plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Read,
            BlockRange::new(10, 2),
        );
        assert_eq!(plan.cache_hit_blocks, 0);
        assert_eq!(plan.admitted_blocks, 2);
        assert_eq!(plan.evictions, 0);
        // Foreground: archive reads only. Background: PC copy writes (+ parity).
        assert!(plan.foreground.iter().all(|io| io.kind == IoKind::Read));
        assert!(!plan.background.is_empty());
        assert!(plan
            .background
            .iter()
            .any(|io| io.kind == IoKind::Write && io.purpose == IoPurpose::Data));
    }

    #[test]
    fn warm_read_is_served_entirely_from_the_cache_partition() {
        let (mut monitor, mut pc, pa) = setup(4);
        let range = BlockRange::new(10, 2);
        plan_request(&mut monitor, &mut pc, &pa, IoKind::Read, range);
        let plan = plan_request(&mut monitor, &mut pc, &pa, IoKind::Read, range);
        assert_eq!(plan.cache_hit_blocks, 2);
        assert_eq!(plan.admitted_blocks, 0);
        assert!(plan.background.is_empty());
        // All foreground I/O targets the cache partition region (offset 0..8
        // on the shared devices, i.e. below the PA offset of 8).
        assert!(plan.foreground.iter().all(|io| io.range.start() < 8));
    }

    #[test]
    fn writes_go_to_the_cache_partition_with_parity() {
        let (mut monitor, mut pc, pa) = setup(4);
        let plan = plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Write,
            BlockRange::new(50, 3),
        );
        assert_eq!(plan.admitted_blocks, 3);
        assert!(plan.foreground.iter().all(|io| io.kind == IoKind::Write
            || io.purpose == IoPurpose::OldDataRead
            || io.purpose == IoPurpose::ParityRead));
        assert!(plan
            .foreground
            .iter()
            .any(|io| io.purpose == IoPurpose::ParityWrite));
        // Nothing touches the archive partition for a write that fits in PC.
        assert!(plan.foreground.iter().all(|io| io.range.start() < 8));
    }

    #[test]
    fn consecutive_admissions_get_contiguous_slots_and_coalesce() {
        let (mut monitor, mut pc, pa) = setup(8);
        let plan = plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Write,
            BlockRange::new(100, 4),
        );
        // 4 blocks admitted into slots 0..4 → 2-block stripe units on
        // consecutive disks; data writes must be coalesced to 2-block I/Os.
        let data_writes: Vec<_> = plan
            .foreground
            .iter()
            .filter(|io| io.purpose == IoPurpose::Data)
            .collect();
        assert!(data_writes.iter().all(|io| io.range.len() == 2));
        assert_eq!(data_writes.len(), 2);
    }

    #[test]
    fn dirty_eviction_produces_archive_writeback() {
        // PC with a single row: capacity 3 data blocks.
        let (mut monitor, mut pc, pa) = setup(1);
        assert_eq!(pc.capacity(), 6);
        // Fill the cache with dirty blocks.
        for b in 0..6 {
            plan_request(
                &mut monitor,
                &mut pc,
                &pa,
                IoKind::Write,
                BlockRange::new(b, 1),
            );
        }
        // The next write must evict a dirty victim and write it back to PA.
        let plan = plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Write,
            BlockRange::new(100, 1),
        );
        assert!(plan.evictions >= 1);
        assert_eq!(plan.dirty_writebacks, plan.evictions);
        // Background contains a PC read of the victim and a PA write with
        // parity maintenance (reads + writes beyond the data write itself).
        assert!(plan
            .background
            .iter()
            .any(|io| io.kind == IoKind::Read && io.range.start() < 2));
        assert!(plan
            .background
            .iter()
            .any(|io| io.purpose == IoPurpose::ParityWrite && io.range.start() >= 2));
    }

    #[test]
    fn multi_block_requests_are_split_across_partitions() {
        let (mut monitor, mut pc, pa) = setup(4);
        // Warm up only the first block of a later 2-block request.
        plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Read,
            BlockRange::new(20, 1),
        );
        let plan = plan_request(
            &mut monitor,
            &mut pc,
            &pa,
            IoKind::Read,
            BlockRange::new(20, 2),
        );
        assert_eq!(plan.cache_hit_blocks, 1);
        assert_eq!(plan.admitted_blocks, 1);
        // Foreground mixes a PC read (offset < 8) and a PA read (offset >= 8).
        assert!(plan.foreground.iter().any(|io| io.range.start() < 8));
        assert!(plan.foreground.iter().any(|io| io.range.start() >= 8));
    }
}
