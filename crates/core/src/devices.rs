//! The simulated device population of an array.
//!
//! An array owns a set of mechanical disks and (for the `*ssd` strategies) a
//! set of dedicated SSDs. [`DeviceSet`] hides the concrete model behind an
//! enum so the rest of the crate can address devices uniformly by index, and
//! records every device-level I/O as a [`DeviceIoEvent`] that the simulation
//! driver feeds into the metrics trackers.

use serde::{Deserialize, Serialize};

use craid_diskmodel::{
    BlockRange, DeviceLoadStats, HddModel, HddParameters, InstantModel, IoKind, SsdModel,
    SsdParameters, StorageDevice,
};
use craid_raid::IoPurpose;
use craid_simkit::{SimDuration, SimTime};

use crate::config::{ArrayConfig, DeviceTier};
use crate::error::CraidError;

/// Health of one device in the array.
///
/// The tracker models a single-fault RAID world: at most one device is
/// non-healthy at a time. A `Failed` device accepts no I/O at all (reads
/// are reconstructed from its parity-group peers, writes are absorbed by
/// parity); a `Rebuilding` device is the installed hot spare — it accepts
/// writes (client and rebuild traffic) while reads still fan out to the
/// surviving members until the rebuild completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskState {
    /// The device serves I/O normally.
    #[default]
    Healthy,
    /// The device is dead: reads must be reconstructed, writes absorbed by
    /// parity.
    Failed,
    /// A hot spare occupies the slot and is being filled by the background
    /// rebuild; reads are still served in degraded mode.
    Rebuilding,
}

/// One device-level I/O issued during the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceIoEvent {
    /// Target device (index within the whole array, SSDs after HDDs).
    pub device: usize,
    /// Physical start block on the device.
    pub start_block: u64,
    /// Number of blocks moved.
    pub blocks: u64,
    /// Transfer direction.
    pub kind: IoKind,
    /// Why the I/O was issued (client data, parity maintenance, copy...).
    pub purpose: IoPurpose,
    /// When the I/O was handed to the device.
    pub submitted: SimTime,
    /// When the device completed it.
    pub finished: SimTime,
    /// Queue depth observed on arrival at the device.
    pub queue_depth: u64,
    /// True if the device served it from its internal cache.
    pub internal_cache_hit: bool,
}

impl DeviceIoEvent {
    /// Bytes moved by this I/O.
    pub fn bytes(&self) -> u64 {
        self.blocks * craid_diskmodel::BLOCK_SIZE_BYTES
    }

    /// Time from submission to completion.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.submitted)
    }
}

/// A single simulated device of any tier.
#[derive(Debug, Clone)]
enum DeviceUnit {
    Hdd(StorageDevice<HddModel>),
    Ssd(StorageDevice<SsdModel>),
    Instant(StorageDevice<InstantModel>),
}

impl DeviceUnit {
    fn submit(&mut self, now: SimTime, kind: IoKind, range: BlockRange) -> (SimTime, u64, bool) {
        match self {
            DeviceUnit::Hdd(d) => {
                let c = d.submit_detailed(now, kind, range);
                (c.finished, c.queue_depth, c.breakdown.cache_hit)
            }
            DeviceUnit::Ssd(d) => {
                let c = d.submit_detailed(now, kind, range);
                (c.finished, c.queue_depth, c.breakdown.cache_hit)
            }
            DeviceUnit::Instant(d) => {
                let c = d.submit_detailed(now, kind, range);
                (c.finished, c.queue_depth, c.breakdown.cache_hit)
            }
        }
    }

    fn stats(&self) -> DeviceLoadStats {
        match self {
            DeviceUnit::Hdd(d) => d.stats().clone(),
            DeviceUnit::Ssd(d) => d.stats().clone(),
            DeviceUnit::Instant(d) => d.stats().clone(),
        }
    }

    fn capacity_blocks(&self) -> u64 {
        match self {
            DeviceUnit::Hdd(d) => d.capacity_blocks(),
            DeviceUnit::Ssd(d) => d.capacity_blocks(),
            DeviceUnit::Instant(d) => d.capacity_blocks(),
        }
    }

    fn is_rotational(&self) -> bool {
        match self {
            DeviceUnit::Hdd(d) => d.is_rotational(),
            DeviceUnit::Ssd(d) => d.is_rotational(),
            DeviceUnit::Instant(d) => d.is_rotational(),
        }
    }
}

/// The device population of one array: `hdd_count` mechanical disks followed
/// by `ssd_count` dedicated SSDs, addressed by a single flat index.
#[derive(Debug, Clone)]
pub struct DeviceSet {
    devices: Vec<DeviceUnit>,
    states: Vec<DiskState>,
    hdd_count: usize,
    tier: DeviceTier,
    hdd_params: HddParameters,
    hdd_capacity_blocks: u64,
}

impl DeviceSet {
    /// Builds the device population described by `config`.
    pub fn from_config(config: &ArrayConfig) -> Self {
        let mut devices = Vec::with_capacity(config.disks + config.ssd_cache_devices);
        for id in 0..config.disks {
            devices.push(Self::build_hdd(config, id));
        }
        let ssd_count = if config.strategy.uses_ssd_cache() {
            config.ssd_cache_devices
        } else {
            0
        };
        for id in 0..ssd_count {
            let params = SsdParameters {
                capacity_blocks: config.ssd.capacity_blocks,
                ..config.ssd.clone()
            };
            devices.push(DeviceUnit::Ssd(StorageDevice::new(
                config.disks + id,
                SsdModel::new(params),
            )));
        }
        DeviceSet {
            states: vec![DiskState::Healthy; devices.len()],
            devices,
            hdd_count: config.disks,
            tier: config.device_tier,
            hdd_params: config.hdd.clone(),
            hdd_capacity_blocks: config.hdd_capacity_blocks,
        }
    }

    fn build_hdd(config: &ArrayConfig, id: usize) -> DeviceUnit {
        match config.device_tier {
            DeviceTier::Hdd => {
                let params = HddParameters {
                    capacity_blocks: config.hdd_capacity_blocks,
                    ..config.hdd.clone()
                };
                DeviceUnit::Hdd(StorageDevice::new(id, HddModel::new(params)))
            }
            DeviceTier::Instant => DeviceUnit::Instant(StorageDevice::new(
                id,
                InstantModel::new(config.hdd_capacity_blocks),
            )),
        }
    }

    /// Number of mechanical disks.
    pub fn hdd_count(&self) -> usize {
        self.hdd_count
    }

    /// Number of dedicated SSDs.
    pub fn ssd_count(&self) -> usize {
        self.devices.len() - self.hdd_count
    }

    /// Total number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the set holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Capacity of device `device` in blocks.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn capacity_blocks(&self, device: usize) -> u64 {
        self.devices[device].capacity_blocks()
    }

    /// True if device `device` is a mechanical disk.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn is_rotational(&self, device: usize) -> bool {
        self.devices[device].is_rotational()
    }

    /// Adds `count` new mechanical disks (an online upgrade).
    pub fn add_hdds(&mut self, count: usize) {
        for i in 0..count {
            let id = self.hdd_count + i;
            let unit = match self.tier {
                DeviceTier::Hdd => {
                    let params = HddParameters {
                        capacity_blocks: self.hdd_capacity_blocks,
                        ..self.hdd_params.clone()
                    };
                    DeviceUnit::Hdd(StorageDevice::new(id, HddModel::new(params)))
                }
                DeviceTier::Instant => DeviceUnit::Instant(StorageDevice::new(
                    id,
                    InstantModel::new(self.hdd_capacity_blocks),
                )),
            };
            // New disks are spliced in just after the existing HDDs so that
            // HDD indices stay contiguous and SSDs keep trailing.
            self.devices.insert(self.hdd_count + i, unit);
            self.states.insert(self.hdd_count + i, DiskState::Healthy);
        }
        self.hdd_count += count;
    }

    /// Health of device `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn disk_state(&self, device: usize) -> DiskState {
        self.states[device]
    }

    /// The single non-healthy device, with its state, if any.
    pub fn degraded_disk(&self) -> Option<(usize, DiskState)> {
        self.states
            .iter()
            .position(|&s| s != DiskState::Healthy)
            .map(|d| (d, self.states[d]))
    }

    /// Marks mechanical disk `device` as failed.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidFault`] if `device` is not a healthy
    /// mechanical disk, or another device is already failed or rebuilding
    /// (the tracker models a single-fault world).
    pub fn fail_disk(&mut self, device: usize) -> Result<(), CraidError> {
        if device >= self.hdd_count {
            return Err(CraidError::InvalidFault(format!(
                "disk {device} is not a mechanical disk (array has {} of them)",
                self.hdd_count
            )));
        }
        if let Some((other, state)) = self.degraded_disk() {
            return Err(CraidError::InvalidFault(format!(
                "disk {other} is already {state:?}; only one concurrent fault is supported"
            )));
        }
        self.states[device] = DiskState::Failed;
        Ok(())
    }

    /// Installs a hot spare in `device`'s slot and marks it rebuilding.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidFault`] unless `device` is currently
    /// failed.
    pub fn start_rebuild(&mut self, device: usize) -> Result<(), CraidError> {
        if self.states.get(device).copied() != Some(DiskState::Failed) {
            return Err(CraidError::InvalidFault(format!(
                "disk {device} is not failed; nothing to repair"
            )));
        }
        self.states[device] = DiskState::Rebuilding;
        Ok(())
    }

    /// Marks a rebuilding device healthy again (the rebuild finished).
    ///
    /// # Panics
    ///
    /// Panics if `device` was not rebuilding — completion without a prior
    /// [`DeviceSet::start_rebuild`] is a driver bug.
    pub fn complete_rebuild(&mut self, device: usize) {
        assert_eq!(
            self.states[device],
            DiskState::Rebuilding,
            "disk {device} was not rebuilding"
        );
        self.states[device] = DiskState::Healthy;
    }

    /// Submits one physical I/O to device `device` and returns its event
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range, the range exceeds the device, or
    /// the device is failed (degraded planning must have redirected the I/O
    /// to surviving parity-group members first).
    pub fn submit(
        &mut self,
        now: SimTime,
        device: usize,
        kind: IoKind,
        range: BlockRange,
        purpose: IoPurpose,
    ) -> DeviceIoEvent {
        assert!(device < self.devices.len(), "device {device} out of range");
        assert_ne!(
            self.states[device],
            DiskState::Failed,
            "I/O submitted to failed device {device}"
        );
        let (finished, queue_depth, cache_hit) = self.devices[device].submit(now, kind, range);
        DeviceIoEvent {
            device,
            start_block: range.start(),
            blocks: range.len(),
            kind,
            purpose,
            submitted: now,
            finished,
            queue_depth,
            internal_cache_hit: cache_hit,
        }
    }

    /// Per-device load statistics, indexed by device number.
    pub fn load_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.iter().map(DeviceUnit::stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;

    fn cfg(strategy: StrategyKind) -> ArrayConfig {
        ArrayConfig::small_test(strategy, 10_000)
    }

    #[test]
    fn population_matches_strategy() {
        let plain = DeviceSet::from_config(&cfg(StrategyKind::Craid5));
        assert_eq!(plain.hdd_count(), 8);
        assert_eq!(plain.ssd_count(), 0);
        assert_eq!(plain.len(), 8);

        let ssd = DeviceSet::from_config(&cfg(StrategyKind::Craid5Ssd));
        assert_eq!(ssd.hdd_count(), 8);
        assert_eq!(ssd.ssd_count(), 3);
        assert!(ssd.is_rotational(0));
        assert!(!ssd.is_rotational(8));
    }

    #[test]
    fn submit_records_event_details() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Raid5));
        let ev = set.submit(
            SimTime::from_millis(1.0),
            2,
            IoKind::Read,
            BlockRange::new(100, 8),
            IoPurpose::Data,
        );
        assert_eq!(ev.device, 2);
        assert_eq!(ev.blocks, 8);
        assert_eq!(ev.bytes(), 8 * 4096);
        assert!(ev.finished > ev.submitted);
        assert!(ev.latency() > SimDuration::ZERO);
        assert_eq!(set.load_stats()[2].requests, 1);
        assert_eq!(set.load_stats()[3].requests, 0);
    }

    #[test]
    fn instant_tier_has_zero_latency() {
        let mut config = cfg(StrategyKind::Raid5);
        config.device_tier = DeviceTier::Instant;
        let mut set = DeviceSet::from_config(&config);
        let ev = set.submit(
            SimTime::from_millis(3.0),
            0,
            IoKind::Write,
            BlockRange::new(0, 4),
            IoPurpose::Data,
        );
        assert_eq!(ev.finished, SimTime::from_millis(3.0));
    }

    #[test]
    fn adding_hdds_extends_the_population() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Craid5Ssd));
        let before = set.len();
        set.add_hdds(4);
        assert_eq!(set.hdd_count(), 12);
        assert_eq!(set.len(), before + 4);
        // SSDs still trail and are still flash.
        assert!(!set.is_rotational(set.len() - 1));
        assert!(set.is_rotational(11));
        // The new disks accept I/O.
        let ev = set.submit(
            SimTime::ZERO,
            10,
            IoKind::Read,
            BlockRange::new(0, 4),
            IoPurpose::Data,
        );
        assert!(ev.finished > SimTime::ZERO);
    }

    #[test]
    fn disk_state_lifecycle_fail_rebuild_heal() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Raid5));
        assert_eq!(set.disk_state(3), DiskState::Healthy);
        assert_eq!(set.degraded_disk(), None);

        set.fail_disk(3).unwrap();
        assert_eq!(set.disk_state(3), DiskState::Failed);
        assert_eq!(set.degraded_disk(), Some((3, DiskState::Failed)));
        // Single-fault world: a second failure is rejected.
        assert!(matches!(set.fail_disk(5), Err(CraidError::InvalidFault(_))));
        // Repairing some other disk is rejected too.
        assert!(set.start_rebuild(5).is_err());

        set.start_rebuild(3).unwrap();
        assert_eq!(set.disk_state(3), DiskState::Rebuilding);
        // A rebuilding spare accepts writes.
        let ev = set.submit(
            SimTime::ZERO,
            3,
            IoKind::Write,
            BlockRange::new(0, 4),
            IoPurpose::RebuildWrite,
        );
        assert_eq!(ev.purpose, IoPurpose::RebuildWrite);

        set.complete_rebuild(3);
        assert_eq!(set.disk_state(3), DiskState::Healthy);
        assert_eq!(set.degraded_disk(), None);
    }

    #[test]
    fn ssds_and_out_of_range_disks_cannot_fail() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Craid5Ssd));
        assert!(set.fail_disk(8).is_err(), "device 8 is an SSD");
        assert!(set.fail_disk(99).is_err());
    }

    #[test]
    fn added_disks_start_healthy_even_mid_fault() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Craid5Ssd));
        set.fail_disk(2).unwrap();
        set.start_rebuild(2).unwrap();
        set.add_hdds(4);
        assert_eq!(set.disk_state(2), DiskState::Rebuilding);
        for d in 8..12 {
            assert_eq!(set.disk_state(d), DiskState::Healthy);
        }
        // SSD state slots trail along with the spliced devices.
        assert_eq!(set.disk_state(set.len() - 1), DiskState::Healthy);
    }

    #[test]
    #[should_panic(expected = "failed device")]
    fn io_to_a_failed_device_panics() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Raid5));
        set.fail_disk(1).unwrap();
        set.submit(
            SimTime::ZERO,
            1,
            IoKind::Read,
            BlockRange::new(0, 1),
            IoPurpose::Data,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_device_rejected() {
        let mut set = DeviceSet::from_config(&cfg(StrategyKind::Raid5));
        set.submit(
            SimTime::ZERO,
            99,
            IoKind::Read,
            BlockRange::new(0, 1),
            IoPurpose::Data,
        );
    }
}
