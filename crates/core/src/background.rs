//! The generic background I/O engine.
//!
//! Two maintenance activities stream large amounts of block I/O through an
//! array while it keeps serving clients: reconstructing a failed disk onto a
//! hot spare (*rebuild*) and moving data to its post-upgrade home after an
//! online expansion (*migration*). Both share the same skeleton — a body of
//! work, a pace expressed in blocks per simulated second, and an ordering
//! policy for which blocks go first — so this module hosts the one scheduler
//! both ride on:
//!
//! * a [`BackgroundEngine`] owns a FIFO queue of [`TaskKind`]s. Exactly one
//!   task is active at a time; an `Expand` scheduled during a rebuild (or a
//!   `DiskRepair` during a migration) simply enqueues behind it, which is
//!   what makes those previously illegal overlaps well-defined.
//! * each task is paced lazily: by time `t` after it became active,
//!   `rate × t` blocks should have been issued. The owning array polls the
//!   engine once per client request ([`BackgroundEngine::poll`]), so
//!   background batches interleave with client traffic instead of
//!   monopolising the devices.
//! * the order blocks are issued in is a [`BackgroundPriority`]:
//!   [`Sequential`](BackgroundPriority::Sequential) walks the address space
//!   in order, [`HotFirst`](BackgroundPriority::HotFirst) issues the blocks
//!   the I/O monitor has seen the most traffic on first — the CRAID move:
//!   the hot working set regains its steady-state placement (and the cache
//!   partition its hit ratio) long before the cold tail has moved.
//!
//! A [`MigrationMap`] records, per logical block, where the authoritative
//! copy of a not-yet-migrated block still lives; the arrays consult it on
//! every request so reads stay correct mid-upgrade while writes land at the
//! new home (and supersede the pending move).

use std::collections::{BTreeMap, VecDeque};

use craid_diskmodel::BlockRange;
use craid_simkit::SimTime;
use serde::{Deserialize, Serialize, Value};

/// Upper bound on one background batch (8 MiB): keeps a single catch-up
/// step from turning into a device-monopolising monster transfer when the
/// configured rate is high or client traffic is sparse.
pub const MAX_BATCH_BLOCKS: u64 = 2_048;

/// Upper bound on the number of distinct device I/Os one rebuild batch may
/// fan out to (hot-first rebuilds chase scattered blocks; without a cap a
/// single catch-up step could issue thousands of tiny I/Os).
const MAX_RANGES_PER_BATCH: usize = 64;

/// The order a background task issues its blocks in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackgroundPriority {
    /// Ascending address order — the classic streaming rebuild/reshape.
    #[default]
    Sequential,
    /// Blocks the I/O monitor has observed the most accesses on go first
    /// (falls back to [`Sequential`](BackgroundPriority::Sequential) for
    /// baseline arrays, which have no monitor to rank heat with).
    HotFirst,
}

impl BackgroundPriority {
    /// The serialized name.
    pub fn name(self) -> &'static str {
        match self {
            BackgroundPriority::Sequential => "sequential",
            BackgroundPriority::HotFirst => "hot-first",
        }
    }
}

impl std::fmt::Display for BackgroundPriority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackgroundPriority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "sequential" => Ok(BackgroundPriority::Sequential),
            "hot-first" | "hotfirst" => Ok(BackgroundPriority::HotFirst),
            other => Err(format!(
                "unknown background priority '{other}' (expected sequential or hot-first)"
            )),
        }
    }
}

impl Serialize for BackgroundPriority {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for BackgroundPriority {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("background priority name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// What a background task is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Streaming a failed disk's image onto its hot spare.
    Rebuild,
    /// Moving blocks to their post-upgrade location after an expansion.
    ExpansionMigration,
}

/// The body of work a task walks through, in issue order.
#[derive(Debug, Clone)]
enum Work {
    /// Contiguous physical ranges on one device (a rebuild's segments,
    /// already ordered by the priority policy).
    Ranges {
        segments: Vec<BlockRange>,
        seg: usize,
        off: u64,
    },
    /// An explicit logical-block order (a migration's queue, already ordered
    /// by the priority policy).
    Blocks { blocks: Vec<u64>, cursor: usize },
}

impl Work {
    fn remaining(&self) -> u64 {
        match self {
            Work::Ranges { segments, seg, off } => segments[*seg..]
                .iter()
                .map(|r| r.len())
                .sum::<u64>()
                .saturating_sub(*off),
            Work::Blocks { blocks, cursor } => (blocks.len() - cursor) as u64,
        }
    }

    /// Takes up to `budget` blocks off the front of the work body.
    fn take(&mut self, budget: u64) -> WorkBatch {
        match self {
            Work::Ranges { segments, seg, off } => {
                let mut out = Vec::new();
                let mut left = budget;
                while left > 0 && *seg < segments.len() && out.len() < MAX_RANGES_PER_BATCH {
                    let segment = segments[*seg];
                    let available = segment.len() - *off;
                    let len = available.min(left);
                    out.push(BlockRange::new(segment.start() + *off, len));
                    left -= len;
                    if len == available {
                        *seg += 1;
                        *off = 0;
                    } else {
                        *off += len;
                    }
                }
                WorkBatch::Ranges(out)
            }
            Work::Blocks { blocks, cursor } => {
                let take = (budget as usize).min(blocks.len() - *cursor);
                let batch = blocks[*cursor..*cursor + take].to_vec();
                *cursor += take;
                WorkBatch::Blocks(batch)
            }
        }
    }
}

/// The blocks one engine poll hands the array to issue I/O for.
#[derive(Debug, Clone)]
enum WorkBatch {
    Ranges(Vec<BlockRange>),
    Blocks(Vec<u64>),
}

/// One paced unit of background work.
#[derive(Debug, Clone)]
struct BackgroundTask {
    kind: TaskKind,
    /// The device slot a rebuild reconstructs (unused for migrations).
    disk: usize,
    /// Surviving parity-group members feeding a rebuild.
    peers: Vec<usize>,
    work: Work,
    rate_blocks_per_sec: f64,
    /// Set when the task reaches the head of the queue and starts pacing.
    started: Option<SimTime>,
    issued: u64,
}

/// A batch of work the engine has decided is due; the array turns it into
/// device I/O.
#[derive(Debug, Clone)]
pub enum Batch {
    /// Reconstruct these physical ranges of `disk` from `peers`.
    Rebuild {
        /// The device slot being rebuilt.
        disk: usize,
        /// Surviving parity-group members to read from.
        peers: Vec<usize>,
        /// Physical ranges to reconstruct in this step.
        ranges: Vec<BlockRange>,
    },
    /// Migrate these logical blocks to their post-upgrade home.
    Migration {
        /// Logical blocks to move in this step (priority order).
        blocks: Vec<u64>,
    },
}

/// A task that ran to completion during the last poll.
#[derive(Debug, Clone)]
pub struct CompletedTask {
    /// What finished.
    pub kind: TaskKind,
    /// The rebuilt device slot (meaningful for rebuilds).
    pub disk: usize,
    /// Blocks the task issued over its lifetime.
    pub blocks_issued: u64,
    /// Simulated seconds from activation to completion — the service window
    /// the paper's redistribution-time trade-off is about.
    pub window_secs: f64,
}

/// The per-array scheduler: a FIFO of rate-paced background tasks.
#[derive(Debug, Clone, Default)]
pub struct BackgroundEngine {
    queue: VecDeque<BackgroundTask>,
    completed: Option<CompletedTask>,
}

impl BackgroundEngine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no task is queued or active.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when a task of `kind` is queued or active.
    pub fn has_task(&self, kind: TaskKind) -> bool {
        self.queue.iter().any(|t| t.kind == kind)
    }

    /// Blocks still to issue across all queued tasks of `kind`.
    pub fn backlog_blocks(&self, kind: TaskKind) -> u64 {
        self.queue
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.work.remaining())
            .sum()
    }

    /// Enqueues a rebuild of `disk` (ranges in `segments` order, fed by
    /// `peers`) paced at `rate_blocks_per_sec`. If the queue is empty the
    /// task starts pacing at `now`; otherwise its clock starts when it
    /// reaches the head.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn push_rebuild(
        &mut self,
        now: SimTime,
        disk: usize,
        peers: Vec<usize>,
        segments: Vec<BlockRange>,
        rate_blocks_per_sec: f64,
    ) {
        self.push(
            BackgroundTask {
                kind: TaskKind::Rebuild,
                disk,
                peers,
                work: Work::Ranges {
                    segments,
                    seg: 0,
                    off: 0,
                },
                rate_blocks_per_sec,
                started: None,
                issued: 0,
            },
            now,
        );
    }

    /// Enqueues an expansion migration over `blocks` (already in priority
    /// order) paced at `rate_blocks_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn push_migration(&mut self, now: SimTime, blocks: Vec<u64>, rate_blocks_per_sec: f64) {
        self.push(
            BackgroundTask {
                kind: TaskKind::ExpansionMigration,
                disk: 0,
                peers: Vec::new(),
                work: Work::Blocks { blocks, cursor: 0 },
                rate_blocks_per_sec,
                started: None,
                issued: 0,
            },
            now,
        );
    }

    fn push(&mut self, mut task: BackgroundTask, now: SimTime) {
        assert!(
            task.rate_blocks_per_sec.is_finite() && task.rate_blocks_per_sec > 0.0,
            "background rate must be finite and positive, got {}",
            task.rate_blocks_per_sec
        );
        if self.queue.is_empty() {
            task.started = Some(now);
        }
        self.queue.push_back(task);
    }

    /// Issues the head task's next catch-up batch at `now`, or `None` when
    /// the pace is already met (or the engine is idle). When the batch
    /// drains the task, it is popped and stashed for
    /// [`BackgroundEngine::take_completed`] and the next queued task starts
    /// its pacing clock at `now`.
    pub fn poll(&mut self, now: SimTime) -> Option<Batch> {
        let task = self.queue.front_mut()?;
        let started = *task.started.get_or_insert(now);
        let remaining = task.work.remaining();
        if remaining == 0 {
            // An empty task (e.g. a migration with nothing to move) completes
            // on its first poll without issuing anything.
            self.finish_head(now, started);
            return None;
        }
        let elapsed = now.saturating_since(started).as_secs();
        let target = (task.rate_blocks_per_sec * elapsed) as u64;
        if target <= task.issued {
            return None;
        }
        let budget = (target - task.issued)
            .clamp(1, MAX_BATCH_BLOCKS)
            .min(remaining);
        let batch = task.work.take(budget);
        let taken = match &batch {
            WorkBatch::Ranges(ranges) => ranges.iter().map(|r| r.len()).sum(),
            WorkBatch::Blocks(blocks) => blocks.len() as u64,
        };
        task.issued += taken;
        let out = match batch {
            WorkBatch::Ranges(ranges) => Batch::Rebuild {
                disk: task.disk,
                peers: task.peers.clone(),
                ranges,
            },
            WorkBatch::Blocks(blocks) => Batch::Migration { blocks },
        };
        if task.work.remaining() == 0 {
            self.finish_head(now, started);
        }
        Some(out)
    }

    fn finish_head(&mut self, now: SimTime, started: SimTime) {
        let task = self.queue.pop_front().expect("a head task exists");
        self.completed = Some(CompletedTask {
            kind: task.kind,
            disk: task.disk,
            blocks_issued: task.issued,
            window_secs: now.saturating_since(started).as_secs(),
        });
        if let Some(next) = self.queue.front_mut() {
            next.started.get_or_insert(now);
        }
    }

    /// The task the last [`BackgroundEngine::poll`] completed, if any. The
    /// owning array applies the completion side effects (mark the spare
    /// healthy, close the migration window) exactly once.
    pub fn take_completed(&mut self) -> Option<CompletedTask> {
        self.completed.take()
    }
}

/// Where a not-yet-migrated block's authoritative copy still lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OldHome {
    /// The cache-partition slot holding the pre-upgrade copy (CRAID
    /// redistribution); `None` when the old home is the pre-upgrade archive
    /// layout (baseline restripe).
    pub pc_slot: Option<u64>,
    /// True if the copy differs from the archive's — the *only* valid copy.
    pub dirty: bool,
}

/// Tracks, per logical block, the blocks an in-flight expansion migration
/// has not yet moved. The redirector/planner layer consults it on every
/// request: pending reads are served from the old location, writes land at
/// the new home and supersede the pending move. Lives alongside the
/// [`MappingCache`](crate::MappingCache), which only knows post-upgrade
/// placements.
#[derive(Debug, Clone, Default)]
pub struct MigrationMap {
    map: BTreeMap<u64, OldHome>,
}

impl MigrationMap {
    /// An empty map (no migration in flight).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks still awaiting migration.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Marks `logical` as pending, with its old home.
    pub fn insert(&mut self, logical: u64, home: OldHome) {
        self.map.insert(logical, home);
    }

    /// The old home of `logical`, if it is still pending.
    pub fn get(&self, logical: u64) -> Option<OldHome> {
        self.map.get(&logical).copied()
    }

    /// True if `logical` has not been moved (or superseded) yet.
    pub fn contains(&self, logical: u64) -> bool {
        self.map.contains_key(&logical)
    }

    /// Removes `logical` (it was migrated, or a client write superseded the
    /// move), returning its old home if it was pending.
    pub fn remove(&mut self, logical: u64) -> Option<OldHome> {
        self.map.remove(&logical)
    }

    /// Drops every pending entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over pending blocks in ascending logical order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, OldHome)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Builds a rebuild's segment order: the `hot` ranges first (in the order
/// given), then the uncovered remainder of `[0, total)` in ascending order.
/// The hot ranges must be disjoint; ranges reaching beyond `total` are
/// clipped.
pub(crate) fn prioritized_segments(total: u64, hot: Vec<BlockRange>) -> Vec<BlockRange> {
    let hot: Vec<BlockRange> = hot
        .into_iter()
        .filter(|r| r.start() < total)
        .map(|r| BlockRange::new(r.start(), r.len().min(total - r.start())))
        .collect();
    let mut covered = hot.clone();
    covered.sort_by_key(|r| r.start());
    debug_assert!(
        covered.windows(2).all(|w| w[0].end() <= w[1].start()),
        "hot ranges must be disjoint"
    );
    let mut segments = hot;
    let mut cursor = 0;
    for range in covered {
        if range.start() > cursor {
            segments.push(BlockRange::new(cursor, range.start() - cursor));
        }
        cursor = range.end();
    }
    if cursor < total {
        segments.push(BlockRange::new(cursor, total - cursor));
    }
    segments
}

/// Merges a sorted, deduplicated list of block numbers into contiguous
/// ranges.
pub(crate) fn merge_blocks_to_ranges(blocks: &[u64]) -> Vec<BlockRange> {
    let mut out: Vec<BlockRange> = Vec::new();
    for &block in blocks {
        match out.last_mut() {
            Some(last) if last.end() == block => {
                *last = BlockRange::new(last.start(), last.len() + 1)
            }
            _ => out.push(BlockRange::new(block, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_parses_and_round_trips() {
        for p in [BackgroundPriority::Sequential, BackgroundPriority::HotFirst] {
            assert_eq!(p.name().parse::<BackgroundPriority>().unwrap(), p);
            let v = Serialize::serialize(&p);
            assert_eq!(BackgroundPriority::deserialize(&v).unwrap(), p);
        }
        assert_eq!(
            "Hot_First".parse::<BackgroundPriority>().unwrap(),
            BackgroundPriority::HotFirst
        );
        assert!("fastest".parse::<BackgroundPriority>().is_err());
        assert!(BackgroundPriority::deserialize(&Value::Int(1)).is_err());
    }

    #[test]
    fn rebuild_task_paces_by_rate_and_completes() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(
            SimTime::ZERO,
            1,
            vec![0, 2, 3],
            vec![BlockRange::new(0, 1_000)],
            100.0,
        );
        // At t = 0 nothing is due yet.
        assert!(engine.poll(SimTime::ZERO).is_none());
        // At t = 2s the pace demands 200 blocks in one batch.
        let Some(Batch::Rebuild {
            disk,
            peers,
            ranges,
        }) = engine.poll(SimTime::from_secs(2.0))
        else {
            panic!("a rebuild batch is due");
        };
        assert_eq!(disk, 1);
        assert_eq!(peers, vec![0, 2, 3]);
        assert_eq!(ranges, vec![BlockRange::new(0, 200)]);
        // Already at pace: an immediate second poll is a no-op.
        assert!(engine.poll(SimTime::from_secs(2.0)).is_none());
        // Far in the future the engine catches up one capped batch at a time.
        let mut total = 200;
        while let Some(Batch::Rebuild { ranges, .. }) = engine.poll(SimTime::from_secs(100.0)) {
            let len: u64 = ranges.iter().map(|r| r.len()).sum();
            assert!(len <= MAX_BATCH_BLOCKS);
            total += len;
        }
        assert_eq!(total, 1_000);
        let done = engine.take_completed().expect("the rebuild finished");
        assert_eq!(done.kind, TaskKind::Rebuild);
        assert_eq!(done.blocks_issued, 1_000);
        assert!(done.window_secs > 0.0);
        assert!(engine.is_idle());
        assert!(engine.take_completed().is_none(), "completion fires once");
    }

    #[test]
    fn queued_task_starts_pacing_when_it_reaches_the_head() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(SimTime::ZERO, 0, vec![1], vec![BlockRange::new(0, 10)], 1e9);
        engine.push_migration(SimTime::ZERO, (0..50).collect(), 10.0);
        assert!(engine.has_task(TaskKind::Rebuild));
        assert!(engine.has_task(TaskKind::ExpansionMigration));
        assert_eq!(engine.backlog_blocks(TaskKind::ExpansionMigration), 50);
        // The rebuild drains in one poll; the migration's clock starts there
        // (t = 5), not at push time (t = 0).
        let t = SimTime::from_secs(5.0);
        assert!(matches!(engine.poll(t), Some(Batch::Rebuild { .. })));
        assert_eq!(engine.take_completed().unwrap().kind, TaskKind::Rebuild);
        assert!(engine.poll(t).is_none(), "migration elapsed time is zero");
        let Some(Batch::Migration { blocks }) = engine.poll(SimTime::from_secs(7.0)) else {
            panic!("20 migration blocks are due 2s later");
        };
        assert_eq!(blocks, (0..20).collect::<Vec<u64>>());
        assert_eq!(engine.backlog_blocks(TaskKind::ExpansionMigration), 30);
    }

    #[test]
    fn empty_migration_completes_without_issuing() {
        let mut engine = BackgroundEngine::new();
        engine.push_migration(SimTime::ZERO, Vec::new(), 100.0);
        assert!(engine.poll(SimTime::from_secs(1.0)).is_none());
        let done = engine.take_completed().unwrap();
        assert_eq!(done.kind, TaskKind::ExpansionMigration);
        assert_eq!(done.blocks_issued, 0);
        assert!(engine.is_idle());
    }

    #[test]
    fn ranged_work_spans_segments_within_one_batch() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(
            SimTime::ZERO,
            2,
            vec![0],
            vec![
                BlockRange::new(100, 3),
                BlockRange::new(10, 4),
                BlockRange::new(50, 100),
            ],
            1e9,
        );
        let Some(Batch::Rebuild { ranges, .. }) = engine.poll(SimTime::from_secs(1.0)) else {
            panic!("everything is due");
        };
        // Hot segments first, in the given order, then the tail.
        assert_eq!(ranges[0], BlockRange::new(100, 3));
        assert_eq!(ranges[1], BlockRange::new(10, 4));
        assert_eq!(ranges[2], BlockRange::new(50, 100));
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<u64>(), 107);
    }

    #[test]
    fn migration_map_tracks_pending_blocks() {
        let mut map = MigrationMap::new();
        assert!(map.is_empty());
        map.insert(
            7,
            OldHome {
                pc_slot: Some(3),
                dirty: true,
            },
        );
        map.insert(
            2,
            OldHome {
                pc_slot: None,
                dirty: false,
            },
        );
        assert_eq!(map.len(), 2);
        assert!(map.contains(7));
        assert_eq!(map.get(7).unwrap().pc_slot, Some(3));
        assert_eq!(
            map.iter().map(|(b, _)| b).collect::<Vec<_>>(),
            vec![2, 7],
            "iteration is in logical order"
        );
        assert_eq!(map.remove(2).unwrap().pc_slot, None);
        assert!(map.remove(2).is_none());
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn prioritized_segments_cover_the_space_exactly_once() {
        let segments = prioritized_segments(
            100,
            vec![
                BlockRange::new(40, 10),
                BlockRange::new(10, 5),
                BlockRange::new(95, 20),
            ],
        );
        // Hot first (clipped), then the ascending remainder.
        assert_eq!(
            segments,
            vec![
                BlockRange::new(40, 10),
                BlockRange::new(10, 5),
                BlockRange::new(95, 5),
                BlockRange::new(0, 10),
                BlockRange::new(15, 25),
                BlockRange::new(50, 45),
            ]
        );
        let total: u64 = segments.iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        let mut blocks: Vec<u64> = segments.iter().flat_map(|r| r.blocks()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn no_hot_ranges_degenerates_to_sequential() {
        assert_eq!(
            prioritized_segments(64, Vec::new()),
            vec![BlockRange::new(0, 64)]
        );
    }

    #[test]
    fn merge_blocks_groups_runs() {
        assert_eq!(
            merge_blocks_to_ranges(&[1, 2, 3, 7, 9, 10]),
            vec![
                BlockRange::new(1, 3),
                BlockRange::new(7, 1),
                BlockRange::new(9, 2)
            ]
        );
        assert!(merge_blocks_to_ranges(&[]).is_empty());
    }
}
