//! The generic background I/O engine.
//!
//! Three maintenance activities stream large amounts of block I/O through an
//! array while it keeps serving clients: reconstructing a failed disk onto a
//! hot spare (*rebuild*), redistributing the cache partition after an online
//! expansion (*expansion migration*), and reshaping an ideal RAID-5 archive
//! onto the grown disk set (*archive restripe*). All three share the same
//! skeleton — a body of work, a pace expressed in blocks per simulated
//! second, and an ordering policy for which blocks go first — so this module
//! hosts the one scheduler they all ride on:
//!
//! * a [`BackgroundEngine`] owns a set of live [`TaskKind`]s scheduled by
//!   **weighted fair share**: every queued task paces from the moment it is
//!   pushed, and when more catch-up work is due than one poll's batch cap
//!   allows, the cap is split across the hungry tasks proportionally to the
//!   configured [`FairShares`] (`rebuild_share` for rebuilds,
//!   `migration_share` for migrations and restripes). A rebuild and a
//!   migration therefore genuinely *contend* for device time — neither
//!   starves the other, and their issue counts track the weights — instead
//!   of serialising FIFO as the first version of this engine did.
//! * each task is paced lazily: by time `t` after it was pushed,
//!   `rate × t` blocks should have been issued. The owning array polls the
//!   engine once per client request ([`BackgroundEngine::poll`]), so
//!   background batches interleave with client traffic instead of
//!   monopolising the devices.
//! * the order blocks are issued in is a [`BackgroundPriority`]:
//!   [`Sequential`](BackgroundPriority::Sequential) walks the address space
//!   in order, [`HotFirst`](BackgroundPriority::HotFirst) issues the blocks
//!   the I/O monitor has seen the most traffic on first — the CRAID move:
//!   the hot working set regains its steady-state placement (and the cache
//!   partition its hit ratio) long before the cold tail has moved.
//!
//! Work bodies come in three shapes: physical ranges (rebuilds), explicit
//! block lists (cache-partition redistributions, bounded by PC capacity),
//! and **streams** — a bare remaining-count whose blocks the owning array
//! produces lazily from a cursor ([`crate::restripe`]), so a paced archive
//! restripe never materialises its O(dataset) move set.
//!
//! A [`MigrationMap`] records, per logical block, where the authoritative
//! copy of a not-yet-migrated block still lives; the arrays consult it on
//! every request so reads stay correct mid-upgrade while writes land at the
//! new home (and supersede the pending move).

use std::collections::{BTreeMap, VecDeque};

use craid_diskmodel::BlockRange;
use craid_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize, Value};

use crate::choice::{self, DecisionPoint, Observation, PollLane};

/// Upper bound on one engine poll's combined issue budget (8 MiB): keeps a
/// single catch-up step from turning into a device-monopolising monster
/// transfer when the configured rates are high or client traffic is sparse.
/// When several tasks are behind pace at once they split this cap by their
/// fair-share weights. With a QoS throttle attached
/// ([`BackgroundEngine::attach_throttle`]) the *effective* cap is this
/// constant scaled by the current throttle, so a backoff shrinks both the
/// pace and the largest burst a single poll may issue.
pub const MAX_BATCH_BLOCKS: u64 = 2_048;

/// Upper bound on the number of distinct device I/Os one rebuild batch may
/// fan out to (hot-first rebuilds chase scattered blocks; without a cap a
/// single catch-up step could issue thousands of tiny I/Os).
const MAX_RANGES_PER_BATCH: usize = 64;

/// The order a background task issues its blocks in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackgroundPriority {
    /// Ascending address order — the classic streaming rebuild/reshape.
    #[default]
    Sequential,
    /// Blocks the I/O monitor has observed the most accesses on go first
    /// (falls back to [`Sequential`](BackgroundPriority::Sequential) for
    /// baseline arrays, which have no monitor to rank heat with — the
    /// *effective* priority is recorded in
    /// [`MigrationStats`](crate::report::MigrationStats) so a no-op knob
    /// cannot masquerade as a null result).
    HotFirst,
}

impl BackgroundPriority {
    /// The serialized name.
    pub fn name(self) -> &'static str {
        match self {
            BackgroundPriority::Sequential => "sequential",
            BackgroundPriority::HotFirst => "hot-first",
        }
    }
}

impl std::fmt::Display for BackgroundPriority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackgroundPriority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "sequential" => Ok(BackgroundPriority::Sequential),
            "hot-first" | "hotfirst" => Ok(BackgroundPriority::HotFirst),
            other => Err(format!(
                "unknown background priority '{other}' (expected sequential or hot-first)"
            )),
        }
    }
}

impl Serialize for BackgroundPriority {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for BackgroundPriority {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("background priority name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// What a background task is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Streaming a failed disk's image onto its hot spare.
    Rebuild,
    /// Redistributing cached blocks to their post-upgrade cache-partition
    /// slots after an expansion (CRAID's paced PC redistribution).
    ExpansionMigration,
    /// Reshaping an ideal RAID-5 archive onto the grown disk set — the
    /// conventional-upgrade cost (mdadm-style), streamed from a cursor.
    ArchiveRestripe,
}

impl TaskKind {
    /// The stable name trace spans and logs use.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Rebuild => "rebuild",
            TaskKind::ExpansionMigration => "expansion-migration",
            TaskKind::ArchiveRestripe => "archive-restripe",
        }
    }
}

/// Identifies one task pushed onto a [`BackgroundEngine`] (ids are unique
/// per engine, in push order). Batches and completions carry the id so the
/// owning array can route work to per-task state — e.g. the cache-partition
/// geometry generation a migration's blocks came from.
pub type TaskId = u64;

/// The relative scheduling weights of the background task classes. When
/// several tasks are behind pace in the same poll, the batch cap is split
/// proportionally: a rebuild with `rebuild_share = 3.0` against a migration
/// with `migration_share = 1.0` gets three quarters of the contended budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairShares {
    /// Weight of [`TaskKind::Rebuild`] tasks.
    pub rebuild: f64,
    /// Weight of [`TaskKind::ExpansionMigration`] and
    /// [`TaskKind::ArchiveRestripe`] tasks.
    pub migration: f64,
}

impl Default for FairShares {
    fn default() -> Self {
        FairShares {
            rebuild: 1.0,
            migration: 1.0,
        }
    }
}

impl FairShares {
    fn weight(&self, kind: TaskKind) -> f64 {
        match kind {
            TaskKind::Rebuild => self.rebuild,
            TaskKind::ExpansionMigration | TaskKind::ArchiveRestripe => self.migration,
        }
    }
}

/// The body of work a task walks through, in issue order.
#[derive(Debug, Clone)]
enum Work {
    /// Contiguous physical ranges on one device (a rebuild's segments,
    /// already ordered by the priority policy).
    Ranges {
        segments: Vec<BlockRange>,
        seg: usize,
        off: u64,
    },
    /// An explicit logical-block order (a PC redistribution's queue, already
    /// ordered by the priority policy; bounded by the cache partition's
    /// capacity).
    Blocks { blocks: Vec<u64>, cursor: usize },
    /// A bare count of blocks the owning array produces lazily from its own
    /// cursor (archive restripes — O(1) memory regardless of dataset size).
    /// [`BackgroundEngine::forfeit`] shrinks it when client writes supersede
    /// pending moves.
    Stream { remaining: u64 },
}

impl Work {
    fn remaining(&self) -> u64 {
        match self {
            Work::Ranges { segments, seg, off } => segments[*seg..]
                .iter()
                .map(|r| r.len())
                .sum::<u64>()
                .saturating_sub(*off),
            Work::Blocks { blocks, cursor } => (blocks.len() - cursor) as u64,
            Work::Stream { remaining } => *remaining,
        }
    }

    /// Takes up to `budget` blocks off the front of the work body.
    fn take(&mut self, budget: u64) -> WorkBatch {
        match self {
            Work::Ranges { segments, seg, off } => {
                let mut out = Vec::new();
                let mut left = budget;
                while left > 0 && *seg < segments.len() && out.len() < MAX_RANGES_PER_BATCH {
                    let segment = segments[*seg];
                    let available = segment.len() - *off;
                    let len = available.min(left);
                    out.push(BlockRange::new(segment.start() + *off, len));
                    left -= len;
                    if len == available {
                        *seg += 1;
                        *off = 0;
                    } else {
                        *off += len;
                    }
                }
                WorkBatch::Ranges(out)
            }
            Work::Blocks { blocks, cursor } => {
                let take = (budget as usize).min(blocks.len() - *cursor);
                let batch = blocks[*cursor..*cursor + take].to_vec();
                *cursor += take;
                WorkBatch::Blocks(batch)
            }
            Work::Stream { remaining } => {
                let take = budget.min(*remaining);
                *remaining -= take;
                WorkBatch::Budget(take)
            }
        }
    }
}

/// The blocks one engine poll hands the array to issue I/O for.
#[derive(Debug, Clone)]
enum WorkBatch {
    Ranges(Vec<BlockRange>),
    Blocks(Vec<u64>),
    Budget(u64),
}

/// The QoS throttle attached to an engine: the controller's current scale
/// and the maintenance-rate floor it is clamped to. Attaching one switches
/// every task's pacing clock from absolute (`rate × elapsed`) to
/// *accumulated scaled time* (`rate × Σ scale·Δt`), so retargets apply
/// going forward without rewriting a task's past.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Throttle {
    /// Current throttle in `[floor, 1.0]`.
    scale: f64,
    /// Lower clamp: maintenance never paces below this fraction of each
    /// task's configured rate, so throttled work always finishes.
    floor: f64,
}

/// One paced unit of background work.
#[derive(Debug, Clone)]
struct BackgroundTask {
    id: TaskId,
    kind: TaskKind,
    /// The device slot a rebuild reconstructs (unused for migrations).
    disk: usize,
    /// Surviving parity-group members feeding a rebuild.
    peers: Vec<usize>,
    work: Work,
    rate_blocks_per_sec: f64,
    /// When the task was pushed — its pacing clock starts immediately
    /// (every queued task is live under fair share).
    started: SimTime,
    issued: u64,
    /// Throttle-scaled seconds accumulated so far (`Σ scale·Δt` since
    /// push); only consulted when a throttle is attached.
    paced_secs: f64,
    /// The instant `paced_secs` was last advanced to.
    last_advance: SimTime,
}

impl BackgroundTask {
    /// Blocks due by the pacing clock at `now`. Unthrottled tasks use the
    /// original absolute formula (`rate × elapsed` — the pinned no-QoS
    /// path); throttled tasks use the accumulated scaled clock, which the
    /// caller must have advanced to `now` first.
    fn pace_target(&self, now: SimTime, throttle: Option<&Throttle>) -> u64 {
        match throttle {
            None => {
                let elapsed = now.saturating_since(self.started).as_secs();
                (self.rate_blocks_per_sec * elapsed) as u64
            }
            Some(_) => (self.rate_blocks_per_sec * self.paced_secs) as u64,
        }
    }

    /// The instant this task's pacing clock first demands another block
    /// (`pace_target` reaches `issued + 1`), or "due immediately" when its
    /// work has drained — an empty task retires on the next poll, and that
    /// completion can unblock deferred expansions, so it must not wait for
    /// a pace tick that will never come.
    fn next_block_due(&self, throttle: Option<&Throttle>) -> SimTime {
        if self.work.remaining() == 0 {
            return SimTime::ZERO;
        }
        let pace_secs = (self.issued + 1) as f64 / self.rate_blocks_per_sec;
        match throttle {
            None => self.started + SimDuration::from_secs(pace_secs),
            Some(t) => {
                let deficit_secs = (pace_secs - self.paced_secs).max(0.0);
                self.last_advance + SimDuration::from_secs(deficit_secs / t.scale)
            }
        }
    }

    /// The simulated instant this task's pace alone would complete it:
    /// `started + total_work / rate`, or — throttled — the instant the
    /// scaled clock reaches the remaining work at the current effective
    /// rate. Forfeited stream work shrinks it.
    fn pace_eta(&self, throttle: Option<&Throttle>) -> SimTime {
        let total = self.issued + self.work.remaining();
        match throttle {
            None => self.started + SimDuration::from_secs(total as f64 / self.rate_blocks_per_sec),
            Some(t) => {
                let deficit_secs =
                    (total as f64 / self.rate_blocks_per_sec - self.paced_secs).max(0.0);
                self.last_advance + SimDuration::from_secs(deficit_secs / t.scale)
            }
        }
    }
}

/// A batch of work the engine has decided is due; the array turns it into
/// device I/O.
#[derive(Debug, Clone)]
pub enum Batch {
    /// Reconstruct these physical ranges of `disk` from `peers`.
    Rebuild {
        /// The issuing task.
        id: TaskId,
        /// The device slot being rebuilt.
        disk: usize,
        /// Surviving parity-group members to read from.
        peers: Vec<usize>,
        /// Physical ranges to reconstruct in this step.
        ranges: Vec<BlockRange>,
    },
    /// Migrate these logical blocks to their post-upgrade home.
    Migration {
        /// The issuing task.
        id: TaskId,
        /// Logical blocks to move in this step (priority order).
        blocks: Vec<u64>,
    },
    /// Issue the next `budget` moves of a streamed restripe; the owning
    /// array advances its cursor to find them.
    Restripe {
        /// The issuing task.
        id: TaskId,
        /// Number of pending moves to issue in this step.
        budget: u64,
    },
}

/// A task that ran to completion during the last poll.
#[derive(Debug, Clone)]
pub struct CompletedTask {
    /// The finished task's id.
    pub id: TaskId,
    /// What finished.
    pub kind: TaskKind,
    /// The rebuilt device slot (meaningful for rebuilds).
    pub disk: usize,
    /// Blocks the task issued over its lifetime.
    pub blocks_issued: u64,
    /// Simulated seconds from push to completion — the service window the
    /// paper's redistribution-time trade-off is about. Under fair share this
    /// includes any time spent contending with concurrent tasks.
    pub window_secs: f64,
}

/// The per-array scheduler: a set of live, rate-paced background tasks
/// sharing each poll's issue budget by [`FairShares`] weights.
#[derive(Debug, Clone, Default)]
pub struct BackgroundEngine {
    queue: VecDeque<BackgroundTask>,
    shares: FairShares,
    next_id: TaskId,
    completed: Vec<CompletedTask>,
    /// The QoS throttle, when a controller is attached. `None` keeps the
    /// original absolute pacing — bit-for-bit the pre-QoS behaviour.
    throttle: Option<Throttle>,
    /// Memoized [`BackgroundEngine::next_due`]: outer `None` = stale
    /// (recompute on the next query), inner `None` = idle engine, never
    /// due. Every state change that can move a pacing clock (push, forfeit,
    /// poll, throttle retarget) clears it.
    next_due_cache: Option<Option<SimTime>>,
}

impl BackgroundEngine {
    /// An empty engine with equal (1:1) shares.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty engine with the given scheduling weights.
    ///
    /// # Panics
    ///
    /// Panics if either share is not finite and positive.
    pub fn with_shares(rebuild: f64, migration: f64) -> Self {
        assert!(
            rebuild.is_finite() && rebuild > 0.0 && migration.is_finite() && migration > 0.0,
            "fair shares must be finite and positive, got rebuild {rebuild} / migration {migration}"
        );
        BackgroundEngine {
            shares: FairShares { rebuild, migration },
            ..Self::default()
        }
    }

    /// The configured scheduling weights.
    pub fn shares(&self) -> FairShares {
        self.shares
    }

    /// Attaches a QoS throttle with the given maintenance-rate floor
    /// (fraction of each task's configured rate, in `(0, 1]`). The engine
    /// starts at full scale (1.0); a controller retargets it via
    /// [`BackgroundEngine::set_throttle`]. Attaching switches pacing to the
    /// accumulated scaled clock — the unthrottled engine keeps the original
    /// absolute formula untouched.
    ///
    /// # Panics
    ///
    /// Panics if the floor is not in `(0, 1]` or a throttle is already
    /// attached.
    pub fn attach_throttle(&mut self, floor: f64) {
        assert!(
            floor.is_finite() && floor > 0.0 && floor <= 1.0,
            "throttle floor must be in (0, 1], got {floor}"
        );
        assert!(
            self.throttle.is_none(),
            "a throttle is already attached to this engine"
        );
        self.throttle = Some(Throttle { scale: 1.0, floor });
        self.next_due_cache = None;
    }

    /// Retargets the attached throttle at `now`: every live task's pacing
    /// clock is first advanced to `now` at the *old* scale (a retarget
    /// applies going forward, never rewriting the past), then the new
    /// scale — clamped to `[floor, 1.0]` — takes effect. A no-op when no
    /// throttle is attached.
    pub fn set_throttle(&mut self, now: SimTime, scale: f64) {
        let Some(throttle) = self.throttle else {
            return;
        };
        self.advance_clocks(now);
        let scale = if scale.is_finite() { scale } else { 1.0 };
        let scale = scale.clamp(throttle.floor, 1.0);
        choice::observe(|| Observation::Throttle {
            scale,
            floor: throttle.floor,
        });
        self.throttle = Some(Throttle { scale, ..throttle });
        self.next_due_cache = None;
    }

    /// The attached throttle's current scale, or `None` when unthrottled.
    pub fn throttle_scale(&self) -> Option<f64> {
        self.throttle.map(|t| t.scale)
    }

    /// Advances every task's accumulated scaled clock to `now` at the
    /// current scale. Only meaningful with a throttle attached.
    fn advance_clocks(&mut self, now: SimTime) {
        let Some(throttle) = self.throttle else {
            return;
        };
        for task in &mut self.queue {
            let dt = now.saturating_since(task.last_advance).as_secs();
            task.paced_secs += throttle.scale * dt;
            task.last_advance = now;
        }
    }

    /// One poll's combined issue budget: the static cap, scaled down by the
    /// throttle when one is attached (never below one block — a throttled
    /// poll still makes progress).
    fn batch_cap(&self) -> u64 {
        match self.throttle {
            None => MAX_BATCH_BLOCKS,
            Some(t) => ((MAX_BATCH_BLOCKS as f64 * t.scale) as u64).max(1),
        }
    }

    /// True when no task is queued or active.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when a task of `kind` is live.
    pub fn has_task(&self, kind: TaskKind) -> bool {
        self.queue.iter().any(|t| t.kind == kind)
    }

    /// Blocks still to issue across all live tasks of `kind`.
    pub fn backlog_blocks(&self, kind: TaskKind) -> u64 {
        self.queue
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.work.remaining())
            .sum()
    }

    /// The earliest instant at which any live task's pace alone would
    /// complete it, or `None` when the engine is idle. The simulation's
    /// end-of-trace drain jumps time here instead of stepping blindly.
    pub fn drain_eta(&self) -> Option<SimTime> {
        self.queue
            .iter()
            .map(|t| t.pace_eta(self.throttle.as_ref()))
            .min()
    }

    /// The earliest instant at which a poll could do anything — issue a
    /// task's next paced block or retire a drained task — or `None` when
    /// the engine is idle. Memoized until the next state change.
    fn next_due(&mut self) -> Option<SimTime> {
        if let Some(due) = self.next_due_cache {
            return due;
        }
        let due = self
            .queue
            .iter()
            .map(|t| t.next_block_due(self.throttle.as_ref()))
            .min();
        self.next_due_cache = Some(due);
        due
    }

    /// True when a poll at `now` could issue or retire work — the gate for
    /// event-clocked pumping. Deliberately eager by a ~1 µs guard: the due
    /// instant is computed in f64 and may round a hair past the exact
    /// simulated instant the integer pace target crosses, and an early poll
    /// is a harmless zero-issue no-op while a late one would defer
    /// maintenance out of its due request's measurement window.
    pub fn work_due(&mut self, now: SimTime) -> bool {
        match self.next_due() {
            None => false,
            Some(at) => at <= now + SimDuration::from_micros(1.0),
        }
    }

    /// Enqueues a rebuild of `disk` (ranges in `segments` order, fed by
    /// `peers`) paced at `rate_blocks_per_sec`. The task is live — its
    /// pacing clock starts at `now` — and contends with every other live
    /// task under the engine's fair shares.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn push_rebuild(
        &mut self,
        now: SimTime,
        disk: usize,
        peers: Vec<usize>,
        segments: Vec<BlockRange>,
        rate_blocks_per_sec: f64,
    ) -> TaskId {
        self.push(
            TaskKind::Rebuild,
            disk,
            peers,
            Work::Ranges {
                segments,
                seg: 0,
                off: 0,
            },
            rate_blocks_per_sec,
            now,
        )
    }

    /// Enqueues an expansion migration over `blocks` (already in priority
    /// order) paced at `rate_blocks_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn push_migration(
        &mut self,
        now: SimTime,
        blocks: Vec<u64>,
        rate_blocks_per_sec: f64,
    ) -> TaskId {
        self.push(
            TaskKind::ExpansionMigration,
            0,
            Vec::new(),
            Work::Blocks { blocks, cursor: 0 },
            rate_blocks_per_sec,
            now,
        )
    }

    /// Enqueues a streamed archive restripe of `total_moves` blocks paced at
    /// `rate_blocks_per_sec`. The engine tracks only the count; the owning
    /// array produces the actual blocks from its restripe cursor when a
    /// [`Batch::Restripe`] asks for them.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn push_restripe(
        &mut self,
        now: SimTime,
        total_moves: u64,
        rate_blocks_per_sec: f64,
    ) -> TaskId {
        self.push(
            TaskKind::ArchiveRestripe,
            0,
            Vec::new(),
            Work::Stream {
                remaining: total_moves,
            },
            rate_blocks_per_sec,
            now,
        )
    }

    fn push(
        &mut self,
        kind: TaskKind,
        disk: usize,
        peers: Vec<usize>,
        work: Work,
        rate_blocks_per_sec: f64,
        now: SimTime,
    ) -> TaskId {
        assert!(
            rate_blocks_per_sec.is_finite() && rate_blocks_per_sec > 0.0,
            "background rate must be finite and positive, got {rate_blocks_per_sec}"
        );
        let id = self.next_id;
        self.next_id += 1;
        choice::observe(|| Observation::MoveSetEnqueued {
            kind,
            blocks: work.remaining(),
        });
        self.queue.push_back(BackgroundTask {
            id,
            kind,
            disk,
            peers,
            work,
            rate_blocks_per_sec,
            started: now,
            issued: 0,
            paced_secs: 0.0,
            last_advance: now,
        });
        self.next_due_cache = None;
        id
    }

    /// Removes `count` blocks of work from streamed task `id` (client
    /// traffic superseded pending restripe moves — they no longer need
    /// background I/O). A no-op for unknown ids (the task already drained)
    /// and for non-stream work bodies.
    pub fn forfeit(&mut self, id: TaskId, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(task) = self.queue.iter_mut().find(|t| t.id == id) {
            if let Work::Stream { remaining } = &mut task.work {
                *remaining = remaining.saturating_sub(count);
                self.next_due_cache = None;
            }
        }
    }

    /// Issues every live task's due catch-up work at `now`, split by the
    /// fair shares when the combined demand exceeds one poll's batch cap
    /// ([`MAX_BATCH_BLOCKS`]). Returns the issued batches in push order —
    /// possibly empty when every task is at pace. Tasks whose work drains
    /// (or was forfeited away) are retired and stashed for
    /// [`BackgroundEngine::take_completed`].
    pub fn poll(&mut self, now: SimTime) -> Vec<Batch> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        // Clocks and issue counters are about to move.
        self.next_due_cache = None;
        // With a throttle attached, bring the scaled pacing clocks up to
        // `now` first (unthrottled pacing reads absolute time and needs no
        // advance).
        self.advance_clocks(now);
        let cap = self.batch_cap();
        // Phase 1: how many blocks does each task's pace demand right now?
        let mut due: Vec<u64> = Vec::with_capacity(self.queue.len());
        let mut total_due = 0u64;
        let mut weight_sum = 0.0f64;
        for task in &self.queue {
            let remaining = task.work.remaining();
            let target = task.pace_target(now, self.throttle.as_ref());
            let want = target.saturating_sub(task.issued).min(remaining);
            due.push(want);
            if want > 0 {
                total_due += want;
                weight_sum += self.shares.weight(task.kind);
            }
        }
        // Phase 2: allocate the poll budget. Uncontended demand passes
        // through; contended demand splits the cap by weight, with a floor
        // of one block per hungry task (everyone makes progress every poll)
        // and leftover budget redistributed in push order so the poll stays
        // work-conserving.
        let mut alloc = due.clone();
        if total_due > cap {
            let mut assigned = 0u64;
            for (task, (alloc, &want)) in self.queue.iter().zip(alloc.iter_mut().zip(&due)) {
                if want == 0 {
                    continue;
                }
                let share = self.shares.weight(task.kind) / weight_sum;
                *alloc = ((cap as f64 * share) as u64).clamp(1, want);
                assigned += *alloc;
            }
            let mut leftover = cap.saturating_sub(assigned);
            // The refill visits hungry tasks in push order; *where it
            // starts* is a policy the model checker may rotate (branch 0 =
            // the first hungry task, the pinned behaviour).
            let hungry: Vec<usize> = (0..alloc.len()).filter(|&i| due[i] > alloc[i]).collect();
            if leftover > 0 && !hungry.is_empty() {
                let start = choice::choose(DecisionPoint::FairShareLeftover, hungry.len());
                for position in 0..hungry.len() {
                    if leftover == 0 {
                        break;
                    }
                    let i = hungry[(start + position) % hungry.len()];
                    let extra = (due[i] - alloc[i]).min(leftover);
                    alloc[i] += extra;
                    leftover -= extra;
                }
            }
        }
        choice::observe(|| Observation::Poll {
            cap,
            total_due,
            lanes: self
                .queue
                .iter()
                .zip(due.iter().zip(&alloc))
                .map(|(task, (&want, &granted))| PollLane {
                    kind: task.kind,
                    want,
                    granted,
                })
                .collect(),
        });
        // Phase 3: issue the batches and retire drained tasks.
        let mut batches = Vec::new();
        let mut index = 0;
        self.queue.retain_mut(|task| {
            let mut budget = alloc[index];
            index += 1;
            // The whole allocation normally goes out as one batch; the
            // model checker may place the batch boundary early instead,
            // deferring the tail to the next poll (the task stays live and
            // its pace re-demands the remainder).
            if budget >= 2 && choice::choose(DecisionPoint::BatchBoundary, 2) == 1 {
                budget -= budget / 2;
            }
            if budget > 0 {
                let batch = task.work.take(budget);
                let taken = match &batch {
                    WorkBatch::Ranges(ranges) => ranges.iter().map(|r| r.len()).sum(),
                    WorkBatch::Blocks(blocks) => blocks.len() as u64,
                    WorkBatch::Budget(count) => *count,
                };
                task.issued += taken;
                batches.push(match batch {
                    WorkBatch::Ranges(ranges) => Batch::Rebuild {
                        id: task.id,
                        disk: task.disk,
                        peers: task.peers.clone(),
                        ranges,
                    },
                    WorkBatch::Blocks(blocks) => Batch::Migration {
                        id: task.id,
                        blocks,
                    },
                    WorkBatch::Budget(count) => Batch::Restripe {
                        id: task.id,
                        budget: count,
                    },
                });
            }
            if task.work.remaining() == 0 {
                // Drained (or empty from the start, or forfeited away):
                // retire the task and record its service window.
                craid_obs::emit(|_| {
                    craid_obs::TraceEvent::span(
                        craid_obs::SpanCategory::Background,
                        task.kind.name(),
                        task.started,
                        now.saturating_since(task.started),
                    )
                    .arg("id", task.id)
                    .arg("disk", task.disk as u64)
                    .arg("blocks_issued", task.issued)
                });
                craid_obs::counter_add("background.completions", 1);
                self.completed.push(CompletedTask {
                    id: task.id,
                    kind: task.kind,
                    disk: task.disk,
                    blocks_issued: task.issued,
                    window_secs: now.saturating_since(task.started).as_secs(),
                });
                false
            } else {
                true
            }
        });
        batches
    }

    /// The tasks the last [`BackgroundEngine::poll`] completed, in push
    /// order. The owning array applies the completion side effects (mark
    /// the spare healthy, close the migration window) exactly once.
    pub fn take_completed(&mut self) -> Vec<CompletedTask> {
        std::mem::take(&mut self.completed)
    }
}

/// Where a not-yet-migrated block's authoritative copy still lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OldHome {
    /// The cache-partition slot holding the pre-upgrade copy (CRAID
    /// redistribution).
    pub pc_slot: u64,
    /// True if the copy differs from the archive's — the *only* valid copy.
    pub dirty: bool,
    /// The migration task ([`TaskId`]) this block was enqueued by — it keys
    /// the preserved pre-upgrade cache-partition geometry the slot refers
    /// to. With queued second expansions several geometries can be live at
    /// once.
    pub generation: TaskId,
}

/// Tracks, per logical block, the blocks an in-flight expansion migration
/// has not yet moved. The redirector/planner layer consults it on every
/// request: pending reads are served from the old location, writes land at
/// the new home and supersede the pending move. Lives alongside the
/// [`MappingCache`](crate::MappingCache), which only knows post-upgrade
/// placements.
#[derive(Debug, Clone, Default)]
pub struct MigrationMap {
    map: BTreeMap<u64, OldHome>,
}

impl MigrationMap {
    /// An empty map (no migration in flight).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks still awaiting migration.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Marks `logical` as pending, with its old home.
    pub fn insert(&mut self, logical: u64, home: OldHome) {
        self.map.insert(logical, home);
    }

    /// The old home of `logical`, if it is still pending.
    pub fn get(&self, logical: u64) -> Option<OldHome> {
        self.map.get(&logical).copied()
    }

    /// True if `logical` has not been moved (or superseded) yet.
    pub fn contains(&self, logical: u64) -> bool {
        self.map.contains_key(&logical)
    }

    /// Removes `logical` (it was migrated, or a client write superseded the
    /// move), returning its old home if it was pending.
    pub fn remove(&mut self, logical: u64) -> Option<OldHome> {
        self.map.remove(&logical)
    }

    /// Drops every pending entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over pending blocks in ascending logical order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, OldHome)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Builds a rebuild's segment order: the `hot` ranges first (in the order
/// given), then the uncovered remainder of `[0, total)` in ascending order.
/// The hot ranges must be disjoint; ranges reaching beyond `total` are
/// clipped.
pub(crate) fn prioritized_segments(total: u64, hot: Vec<BlockRange>) -> Vec<BlockRange> {
    let hot: Vec<BlockRange> = hot
        .into_iter()
        .filter(|r| r.start() < total)
        .map(|r| BlockRange::new(r.start(), r.len().min(total - r.start())))
        .collect();
    let mut covered = hot.clone();
    covered.sort_by_key(|r| r.start());
    debug_assert!(
        covered.windows(2).all(|w| w[0].end() <= w[1].start()),
        "hot ranges must be disjoint"
    );
    let mut segments = hot;
    let mut cursor = 0;
    for range in covered {
        if range.start() > cursor {
            segments.push(BlockRange::new(cursor, range.start() - cursor));
        }
        cursor = range.end();
    }
    if cursor < total {
        segments.push(BlockRange::new(cursor, total - cursor));
    }
    segments
}

/// Merges a sorted, deduplicated list of block numbers into contiguous
/// ranges.
pub(crate) fn merge_blocks_to_ranges(blocks: &[u64]) -> Vec<BlockRange> {
    let mut out: Vec<BlockRange> = Vec::new();
    for &block in blocks {
        match out.last_mut() {
            Some(last) if last.end() == block => {
                *last = BlockRange::new(last.start(), last.len() + 1)
            }
            _ => out.push(BlockRange::new(block, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rebuild_blocks(batch: &Batch) -> u64 {
        match batch {
            Batch::Rebuild { ranges, .. } => ranges.iter().map(|r| r.len()).sum(),
            _ => 0,
        }
    }

    #[test]
    fn priority_parses_and_round_trips() {
        for p in [BackgroundPriority::Sequential, BackgroundPriority::HotFirst] {
            assert_eq!(p.name().parse::<BackgroundPriority>().unwrap(), p);
            let v = Serialize::serialize(&p);
            assert_eq!(BackgroundPriority::deserialize(&v).unwrap(), p);
        }
        assert_eq!(
            "Hot_First".parse::<BackgroundPriority>().unwrap(),
            BackgroundPriority::HotFirst
        );
        assert!("fastest".parse::<BackgroundPriority>().is_err());
        assert!(BackgroundPriority::deserialize(&Value::Int(1)).is_err());
    }

    #[test]
    fn rebuild_task_paces_by_rate_and_completes() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(
            SimTime::ZERO,
            1,
            vec![0, 2, 3],
            vec![BlockRange::new(0, 1_000)],
            100.0,
        );
        // At t = 0 nothing is due yet.
        assert!(engine.poll(SimTime::ZERO).is_empty());
        // At t = 2s the pace demands 200 blocks in one batch.
        let batches = engine.poll(SimTime::from_secs(2.0));
        assert_eq!(batches.len(), 1);
        let Batch::Rebuild {
            disk,
            peers,
            ranges,
            ..
        } = &batches[0]
        else {
            panic!("a rebuild batch is due");
        };
        assert_eq!(*disk, 1);
        assert_eq!(*peers, vec![0, 2, 3]);
        assert_eq!(*ranges, vec![BlockRange::new(0, 200)]);
        // Already at pace: an immediate second poll is a no-op.
        assert!(engine.poll(SimTime::from_secs(2.0)).is_empty());
        // Far in the future the engine catches up one capped batch at a time.
        let mut total = 200;
        loop {
            let batches = engine.poll(SimTime::from_secs(100.0));
            if batches.is_empty() {
                break;
            }
            for batch in &batches {
                let len = rebuild_blocks(batch);
                assert!(len <= MAX_BATCH_BLOCKS);
                total += len;
            }
        }
        assert_eq!(total, 1_000);
        let done = engine.take_completed();
        assert_eq!(done.len(), 1, "the rebuild finished");
        assert_eq!(done[0].kind, TaskKind::Rebuild);
        assert_eq!(done[0].blocks_issued, 1_000);
        assert!(done[0].window_secs > 0.0);
        assert!(engine.is_idle());
        assert!(engine.take_completed().is_empty(), "completion fires once");
    }

    #[test]
    fn concurrent_tasks_both_progress_every_poll() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 100_000)],
            1e9,
        );
        engine.push_migration(SimTime::ZERO, (0..100_000).collect(), 1e9);
        assert!(engine.has_task(TaskKind::Rebuild));
        assert!(engine.has_task(TaskKind::ExpansionMigration));
        // Both are saturated: every poll issues work for both, splitting the
        // cap half and half at equal weights.
        let batches = engine.poll(SimTime::from_secs(1.0));
        assert_eq!(batches.len(), 2);
        let rebuild: u64 = batches.iter().map(rebuild_blocks).sum();
        let migration: u64 = batches
            .iter()
            .map(|b| match b {
                Batch::Migration { blocks, .. } => blocks.len() as u64,
                _ => 0,
            })
            .sum();
        assert!(rebuild > 0 && migration > 0, "both make progress");
        assert_eq!(rebuild, MAX_BATCH_BLOCKS / 2);
        assert_eq!(migration, MAX_BATCH_BLOCKS / 2);
    }

    #[test]
    fn contended_budget_follows_the_shares() {
        let mut engine = BackgroundEngine::with_shares(3.0, 1.0);
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 1_000_000)],
            1e9,
        );
        engine.push_migration(SimTime::ZERO, (0..100_000).collect(), 1e9);
        let mut rebuild = 0u64;
        let mut migration = 0u64;
        for i in 1..=20 {
            for batch in engine.poll(SimTime::from_secs(i as f64)) {
                match batch {
                    Batch::Rebuild { ranges, .. } => {
                        rebuild += ranges.iter().map(|r| r.len()).sum::<u64>()
                    }
                    Batch::Migration { blocks, .. } => migration += blocks.len() as u64,
                    Batch::Restripe { .. } => unreachable!("no stream task pushed"),
                }
            }
        }
        // 3:1 weights → the rebuild issues three times the migration's
        // blocks, within one batch of tolerance.
        let expected = 3.0 * migration as f64;
        assert!(
            (rebuild as f64 - expected).abs() <= MAX_BATCH_BLOCKS as f64,
            "rebuild {rebuild} vs migration {migration} should honour 3:1 shares"
        );
    }

    #[test]
    fn uncontended_polls_bypass_the_split() {
        let mut engine = BackgroundEngine::with_shares(5.0, 1.0);
        // Slow rates: at t = 1s only 10 + 20 blocks are due — far below the
        // cap, so both tasks get exactly their pace regardless of weights.
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 500)],
            10.0,
        );
        engine.push_migration(SimTime::ZERO, (0..500).collect(), 20.0);
        let batches = engine.poll(SimTime::from_secs(1.0));
        let rebuild: u64 = batches.iter().map(rebuild_blocks).sum();
        let migration: u64 = batches
            .iter()
            .map(|b| match b {
                Batch::Migration { blocks, .. } => blocks.len() as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(rebuild, 10);
        assert_eq!(migration, 20);
    }

    #[test]
    fn stream_task_issues_budgets_and_forfeits() {
        let mut engine = BackgroundEngine::new();
        let id = engine.push_restripe(SimTime::ZERO, 100, 10.0);
        assert!(engine.has_task(TaskKind::ArchiveRestripe));
        assert_eq!(engine.backlog_blocks(TaskKind::ArchiveRestripe), 100);
        let batches = engine.poll(SimTime::from_secs(2.0));
        assert_eq!(batches.len(), 1);
        let Batch::Restripe { id: got, budget } = batches[0] else {
            panic!("a restripe budget is due");
        };
        assert_eq!(got, id);
        assert_eq!(budget, 20);
        // Client writes supersede 70 of the remaining 80 moves.
        engine.forfeit(id, 70);
        assert_eq!(engine.backlog_blocks(TaskKind::ArchiveRestripe), 10);
        // The pace-completion estimate shrank accordingly: 30 effective
        // blocks at 10 blocks/s.
        assert_eq!(engine.drain_eta().unwrap(), SimTime::from_secs(3.0));
        let batches = engine.poll(SimTime::from_secs(100.0));
        assert!(matches!(batches[0], Batch::Restripe { budget: 10, .. }));
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, TaskKind::ArchiveRestripe);
        assert_eq!(done[0].blocks_issued, 30);
        assert!(engine.is_idle());
        // Forfeiting a drained task is a harmless no-op.
        engine.forfeit(id, 5);
    }

    #[test]
    fn forfeiting_all_work_completes_without_issuing() {
        let mut engine = BackgroundEngine::new();
        let id = engine.push_restripe(SimTime::ZERO, 10, 1.0);
        engine.forfeit(id, 10);
        assert!(engine.poll(SimTime::from_secs(0.5)).is_empty());
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].blocks_issued, 0);
        assert!(engine.is_idle());
    }

    #[test]
    fn empty_migration_completes_without_issuing() {
        let mut engine = BackgroundEngine::new();
        engine.push_migration(SimTime::ZERO, Vec::new(), 100.0);
        assert!(engine.poll(SimTime::from_secs(1.0)).is_empty());
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, TaskKind::ExpansionMigration);
        assert_eq!(done[0].blocks_issued, 0);
        assert!(engine.is_idle());
    }

    #[test]
    fn drain_eta_is_the_earliest_pace_completion() {
        let mut engine = BackgroundEngine::new();
        assert!(engine.drain_eta().is_none());
        engine.push_rebuild(
            SimTime::from_secs(1.0),
            0,
            vec![1],
            vec![BlockRange::new(0, 100)],
            10.0, // completes at t = 11
        );
        engine.push_migration(SimTime::from_secs(2.0), (0..30).collect(), 10.0); // t = 5
        assert_eq!(engine.drain_eta().unwrap(), SimTime::from_secs(5.0));
        // Draining at the eta retires the migration; the rebuild remains.
        while engine
            .poll(SimTime::from_secs(5.0))
            .iter()
            .any(|b| matches!(b, Batch::Migration { .. }))
        {}
        let done = engine.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, TaskKind::ExpansionMigration);
        assert_eq!(done[0].window_secs, 3.0);
        assert_eq!(engine.drain_eta().unwrap(), SimTime::from_secs(11.0));
    }

    #[test]
    fn ranged_work_spans_segments_within_one_batch() {
        let mut engine = BackgroundEngine::new();
        engine.push_rebuild(
            SimTime::ZERO,
            2,
            vec![0],
            vec![
                BlockRange::new(100, 3),
                BlockRange::new(10, 4),
                BlockRange::new(50, 100),
            ],
            1e9,
        );
        let batches = engine.poll(SimTime::from_secs(1.0));
        let Batch::Rebuild { ranges, .. } = &batches[0] else {
            panic!("everything is due");
        };
        // Hot segments first, in the given order, then the tail.
        assert_eq!(ranges[0], BlockRange::new(100, 3));
        assert_eq!(ranges[1], BlockRange::new(10, 4));
        assert_eq!(ranges[2], BlockRange::new(50, 100));
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<u64>(), 107);
    }

    #[test]
    fn migration_map_tracks_pending_blocks() {
        let mut map = MigrationMap::new();
        assert!(map.is_empty());
        map.insert(
            7,
            OldHome {
                pc_slot: 3,
                dirty: true,
                generation: 0,
            },
        );
        map.insert(
            2,
            OldHome {
                pc_slot: 9,
                dirty: false,
                generation: 1,
            },
        );
        assert_eq!(map.len(), 2);
        assert!(map.contains(7));
        assert_eq!(map.get(7).unwrap().pc_slot, 3);
        assert_eq!(map.get(2).unwrap().generation, 1);
        assert_eq!(
            map.iter().map(|(b, _)| b).collect::<Vec<_>>(),
            vec![2, 7],
            "iteration is in logical order"
        );
        assert_eq!(map.remove(2).unwrap().pc_slot, 9);
        assert!(map.remove(2).is_none());
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn prioritized_segments_cover_the_space_exactly_once() {
        let segments = prioritized_segments(
            100,
            vec![
                BlockRange::new(40, 10),
                BlockRange::new(10, 5),
                BlockRange::new(95, 20),
            ],
        );
        // Hot first (clipped), then the ascending remainder.
        assert_eq!(
            segments,
            vec![
                BlockRange::new(40, 10),
                BlockRange::new(10, 5),
                BlockRange::new(95, 5),
                BlockRange::new(0, 10),
                BlockRange::new(15, 25),
                BlockRange::new(50, 45),
            ]
        );
        let total: u64 = segments.iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        let mut blocks: Vec<u64> = segments.iter().flat_map(|r| r.blocks()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn no_hot_ranges_degenerates_to_sequential() {
        assert_eq!(
            prioritized_segments(64, Vec::new()),
            vec![BlockRange::new(0, 64)]
        );
    }

    #[test]
    fn merge_blocks_groups_runs() {
        assert_eq!(
            merge_blocks_to_ranges(&[1, 2, 3, 7, 9, 10]),
            vec![
                BlockRange::new(1, 3),
                BlockRange::new(7, 1),
                BlockRange::new(9, 2)
            ]
        );
        assert!(merge_blocks_to_ranges(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn invalid_shares_are_rejected() {
        BackgroundEngine::with_shares(0.0, 1.0);
    }

    #[test]
    fn throttled_task_paces_at_the_scaled_rate() {
        let mut engine = BackgroundEngine::new();
        engine.attach_throttle(0.1);
        assert_eq!(engine.throttle_scale(), Some(1.0));
        engine.push_rebuild(
            SimTime::ZERO,
            1,
            vec![0],
            vec![BlockRange::new(0, 10_000)],
            100.0,
        );
        engine.set_throttle(SimTime::ZERO, 0.5);
        assert_eq!(engine.throttle_scale(), Some(0.5));
        // Two seconds at half scale: 100 blocks due instead of 200.
        let issued: u64 = engine
            .poll(SimTime::from_secs(2.0))
            .iter()
            .map(rebuild_blocks)
            .sum();
        assert_eq!(issued, 100);
        // Retarget mid-flight: one more second at full scale adds 100.
        engine.set_throttle(SimTime::from_secs(2.0), 1.0);
        let issued: u64 = engine
            .poll(SimTime::from_secs(3.0))
            .iter()
            .map(rebuild_blocks)
            .sum();
        assert_eq!(issued, 100);
    }

    #[test]
    fn throttle_clamps_to_the_floor_and_work_still_finishes() {
        let mut engine = BackgroundEngine::new();
        engine.attach_throttle(0.25);
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 100)],
            100.0,
        );
        // A zero request clamps to the floor: pacing continues at a quarter
        // of the configured rate, never below it.
        engine.set_throttle(SimTime::ZERO, 0.0);
        assert_eq!(engine.throttle_scale(), Some(0.25));
        let issued: u64 = engine
            .poll(SimTime::from_secs(1.0))
            .iter()
            .map(rebuild_blocks)
            .sum();
        assert_eq!(issued, 25, "floor pace is 25 blocks/s");
        // The drain eta accounts for the floored pace: 75 blocks left at
        // 25 blocks/s from t = 1.
        assert_eq!(engine.drain_eta().unwrap(), SimTime::from_secs(4.0));
        engine.poll(SimTime::from_secs(4.0));
        assert!(engine.is_idle(), "floored work still finishes");
        assert_eq!(engine.take_completed().len(), 1);
    }

    #[test]
    fn throttle_scales_the_batch_cap() {
        let mut engine = BackgroundEngine::new();
        engine.attach_throttle(0.01);
        engine.push_migration(SimTime::ZERO, (0..100_000).collect(), 1e9);
        engine.set_throttle(SimTime::ZERO, 0.25);
        let batches = engine.poll(SimTime::from_secs(1.0));
        let issued: u64 = batches
            .iter()
            .map(|b| match b {
                Batch::Migration { blocks, .. } => blocks.len() as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(
            issued,
            MAX_BATCH_BLOCKS / 4,
            "the cap shrinks with the throttle"
        );
    }

    #[test]
    fn unthrottled_engines_ignore_set_throttle() {
        let mut engine = BackgroundEngine::new();
        engine.set_throttle(SimTime::from_secs(1.0), 0.5);
        assert_eq!(engine.throttle_scale(), None);
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 1_000)],
            100.0,
        );
        let issued: u64 = engine
            .poll(SimTime::from_secs(2.0))
            .iter()
            .map(rebuild_blocks)
            .sum();
        assert_eq!(issued, 200, "absolute pacing is untouched");
    }

    #[test]
    #[should_panic(expected = "floor must be in (0, 1]")]
    fn invalid_throttle_floor_is_rejected() {
        BackgroundEngine::new().attach_throttle(0.0);
    }

    #[test]
    fn work_due_gates_exactly_on_pacing_clock() {
        let mut engine = BackgroundEngine::new();
        assert!(
            !engine.work_due(SimTime::from_secs(100.0)),
            "an idle engine is never due"
        );
        engine.push_rebuild(
            SimTime::ZERO,
            0,
            vec![1],
            vec![BlockRange::new(0, 100)],
            10.0,
        );
        // First block due at t = 0.1 s.
        assert!(!engine.work_due(SimTime::from_secs(0.05)));
        assert!(engine.work_due(SimTime::from_secs(0.1)));
        assert!(engine.work_due(SimTime::from_secs(5.0)));
        let issued: u64 = engine
            .poll(SimTime::from_secs(0.2))
            .iter()
            .map(rebuild_blocks)
            .sum();
        assert_eq!(issued, 2);
        assert!(
            !engine.work_due(SimTime::from_secs(0.25)),
            "at pace right after the poll"
        );
        assert!(engine.work_due(SimTime::from_secs(0.3)));
        // A fully forfeited stream task must retire on the next poll: due
        // immediately, not at a pace tick that will never come.
        let mut engine = BackgroundEngine::new();
        let id = engine.push_restripe(SimTime::from_secs(7.0), 50, 10.0);
        engine.forfeit(id, 50);
        assert!(engine.work_due(SimTime::from_secs(7.0)));
        assert!(engine.poll(SimTime::from_secs(7.0)).is_empty());
        assert_eq!(engine.take_completed().len(), 1);
        assert!(!engine.work_due(SimTime::from_secs(8.0)));
    }

    proptest! {
        /// Event-clocked pumping is exactly per-request pumping with the
        /// guaranteed-idle polls deleted: engine A is polled at every
        /// instant, engine B only when `work_due` says a poll could do
        /// anything, and the two issue identical batch streams and retire
        /// identical tasks at identical instants.
        #[test]
        fn prop_event_clocked_polling_matches_per_request(
            sizes in (50u64..3_000, 50u64..3_000, 50u64..3_000),
            ops in proptest::collection::vec((1u64..4_000, 0u8..8, 0u64..64, any::<bool>()), 1..150),
        ) {
            let (rb, mg, rs) = sizes;
            let build = |engine: &mut BackgroundEngine| {
                engine.push_rebuild(SimTime::ZERO, 0, vec![1, 2], vec![BlockRange::new(0, rb)], 37.0);
                engine.push_migration(SimTime::ZERO, (0..mg).collect(), 23.0);
                engine.push_restripe(SimTime::ZERO, rs, 11.0)
            };
            let mut per_request = BackgroundEngine::new();
            let mut event_clocked = BackgroundEngine::new();
            let stream_a = build(&mut per_request);
            let stream_b = build(&mut event_clocked);
            let mut t_ms = 0u64;
            for &(dt_ms, op, amount, _) in &ops {
                t_ms += dt_ms;
                let now = SimTime::from_millis(t_ms as f64);
                if op == 7 {
                    per_request.forfeit(stream_a, amount);
                    event_clocked.forfeit(stream_b, amount);
                    continue;
                }
                let due = event_clocked.work_due(now);
                let batches_a = per_request.poll(now);
                let done_a = per_request.take_completed();
                if due {
                    let batches_b = event_clocked.poll(now);
                    let done_b = event_clocked.take_completed();
                    prop_assert_eq!(format!("{batches_a:?}"), format!("{batches_b:?}"));
                    prop_assert_eq!(format!("{done_a:?}"), format!("{done_b:?}"));
                } else {
                    prop_assert!(
                        batches_a.is_empty(),
                        "a skipped poll would have issued {:?}",
                        batches_a
                    );
                    prop_assert!(
                        done_a.is_empty(),
                        "a skipped poll would have retired {:?}",
                        done_a
                    );
                }
            }
            prop_assert_eq!(per_request.is_idle(), event_clocked.is_idle());
        }

        /// With a QoS throttle retargeting mid-flight the scaled clocks may
        /// accumulate rounding dust, but pacing still conserves work: both
        /// cadences drain every task and issue the same total blocks.
        #[test]
        fn prop_event_clocked_throttled_conserves_blocks(
            ops in proptest::collection::vec((1u64..4_000, 0u8..4, 1u64..100, any::<bool>()), 1..100),
        ) {
            let total = |batches: &[Batch]| -> u64 {
                batches
                    .iter()
                    .map(|b| match b {
                        Batch::Rebuild { ranges, .. } => ranges.iter().map(|r| r.len()).sum(),
                        Batch::Migration { blocks, .. } => blocks.len() as u64,
                        Batch::Restripe { budget, .. } => *budget,
                    })
                    .sum()
            };
            let build = |engine: &mut BackgroundEngine| {
                engine.attach_throttle(0.1);
                engine.push_rebuild(SimTime::ZERO, 0, vec![1], vec![BlockRange::new(0, 800)], 41.0);
                engine.push_migration(SimTime::ZERO, (0..600).collect(), 17.0);
            };
            let mut per_request = BackgroundEngine::new();
            let mut event_clocked = BackgroundEngine::new();
            build(&mut per_request);
            build(&mut event_clocked);
            let mut issued_a = 0u64;
            let mut issued_b = 0u64;
            let mut t_ms = 0u64;
            for &(dt_ms, op, scale_pct, _) in &ops {
                t_ms += dt_ms;
                let now = SimTime::from_millis(t_ms as f64);
                if op == 3 {
                    per_request.set_throttle(now, scale_pct as f64 / 100.0);
                    event_clocked.set_throttle(now, scale_pct as f64 / 100.0);
                    continue;
                }
                issued_a += total(&per_request.poll(now));
                if event_clocked.work_due(now) {
                    issued_b += total(&event_clocked.poll(now));
                }
            }
            // Drain both at the same far-future instants.
            let mut t = t_ms as f64 + 1_000.0;
            while !(per_request.is_idle() && event_clocked.is_idle()) {
                let now = SimTime::from_millis(t);
                issued_a += total(&per_request.poll(now));
                if event_clocked.work_due(now) {
                    issued_b += total(&event_clocked.poll(now));
                }
                t += 1_000.0;
            }
            prop_assert_eq!(issued_a, 1_400);
            prop_assert_eq!(issued_b, 1_400);
        }
    }
}
