//! The CRAID array: cache partition + archive partition + control path.

use std::collections::BTreeMap;

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::{IoPurpose, Layout, Raid5Layout, Raid5PlusLayout};
use craid_simkit::SimTime;

use crate::background::{
    merge_blocks_to_ranges, BackgroundEngine, BackgroundPriority, Batch, MigrationMap, OldHome,
    TaskId, TaskKind,
};
use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::{DeviceIoEvent, DeviceSet, DiskState};
use crate::error::CraidError;
use crate::fault;
use crate::monitor::{IoMonitor, MonitorStats};
use crate::partition::{ArchiveLayout, CachePartition, Partition, PartitionIo};
use crate::redirector::{self, ArchiveAccess, PlanScratch};
use crate::report::{FaultStats, MigrationStats};
use crate::restripe::RestripeState;

use super::{ExpansionReport, RequestReport, StorageArray};

/// True when a pending-map entry of `entry` generation may be consumed by
/// migration task `task`. Production requires an exact match — the guard
/// PR 4 added after an older task was caught consuming a newer generation's
/// entry and migrating the block with a stale geometry. The test-only fault
/// hook ([`crate::choice::faults`]) re-opens exactly that hole so the model
/// checker can demonstrate it finds the bug.
fn generation_matches(entry: TaskId, task: TaskId) -> bool {
    #[cfg(test)]
    if crate::choice::faults::stale_generation_guard_disabled() {
        return true;
    }
    entry == task
}

/// A CRAID volume: the archive partition `PA` holds every block, the cache
/// partition `PC` holds copies of the hot set, and the monitor/redirector
/// pair keeps the two coherent (paper §3–4). Maintenance streams — rebuilds,
/// paced upgrade migrations and paced archive restripes — ride on one
/// fair-share [`BackgroundEngine`].
#[derive(Debug)]
pub struct CraidArray {
    config: ArrayConfig,
    devices: DeviceSet,
    monitor: IoMonitor,
    pc: CachePartition,
    pa: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
    background: BackgroundEngine,
    /// Blocks paced upgrades have not yet redistributed, keyed by archive
    /// LBA; each entry names the migration generation whose preserved
    /// geometry in `old_pcs` its slot refers to.
    migration: MigrationMap,
    /// Pre-upgrade cache-partition geometries, keyed by the migration task
    /// that still has blocks in them. Several can be live at once: a
    /// second `expand` may start its own PC redistribution while an
    /// earlier one is still streaming (the exactly-one-location invariant
    /// keeps their block sets disjoint).
    old_pcs: BTreeMap<TaskId, CachePartition>,
    /// The in-flight paced archive restripe (`CRAID-5`/`CRAID-5ssd` only:
    /// their ideal RAID-5 archive must reshape onto the grown disk set —
    /// the cost the paper's accounting charges to conventional upgrades and
    /// this repo used to model as free).
    archive_restripe: Option<RestripeState>,
    /// Expansions accepted while an archive restripe was in flight; each
    /// activates when the restripe drains (a reshape cursor cannot retarget
    /// a moving layout, so ideal-archive upgrades serialize like mdadm
    /// reshapes, while the aggregated `+` variants pipeline freely) — and,
    /// under [`ActivationPolicy::WaitForRepair`](crate::config::ActivationPolicy),
    /// only once the array is healthy again.
    activation: super::activation::ActivationQueue,
    fault_stats: FaultStats,
    migration_stats: MigrationStats,
    /// Reusable per-request planner buffers (cleared each plan, never
    /// shrunk) — keeps the replay hot path allocation-free.
    plan_scratch: PlanScratch,
}

impl CraidArray {
    /// Builds the CRAID array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or a layout
    /// cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        if !config.strategy.is_craid() {
            return Err(CraidError::InvalidConfig(
                crate::analyze::Diagnostic::error(
                    crate::analyze::codes::STRATEGY_MISMATCH,
                    "array.strategy",
                    "CraidArray requires a CRAID strategy",
                ),
            ));
        }
        let devices = DeviceSet::from_config(&config);
        let pc = Self::build_pc(&config, config.disks)?;
        let pa = Self::build_pa(&config, config.disks, &config.expansion_sets)?;
        let monitor = IoMonitor::new(config.policy, pc.capacity());
        let mut background =
            BackgroundEngine::with_shares(config.rebuild_share, config.migration_share);
        if let Some(spec) = &config.qos {
            // A QoS-steered array pays attention to the controller: attach
            // the throttle (at full scale) so retargets can scale pacing.
            background.attach_throttle(spec.floor);
        }
        Ok(CraidArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            background,
            config,
            devices,
            monitor,
            pc,
            pa,
            migration: MigrationMap::new(),
            old_pcs: BTreeMap::new(),
            archive_restripe: None,
            activation: super::activation::ActivationQueue::new(),
            fault_stats: FaultStats::default(),
            migration_stats: MigrationStats::default(),
            plan_scratch: PlanScratch::default(),
        })
    }

    /// Activates queued deferred expansions whose preconditions now hold:
    /// the blocking archive restripe has drained and — under the
    /// wait-for-repair policy — the array is healthy. Committing an
    /// ideal-archive expansion starts a new restripe, which re-blocks the
    /// rest of the queue (one reshape at a time, like serialized mdadm
    /// grows).
    fn maybe_activate_deferred(&mut self, now: SimTime) {
        loop {
            // Committing an activation may start a new restripe, which
            // re-blocks the rest of the queue — so the gate is re-evaluated
            // every iteration.
            let blocked = self.archive_restripe.is_some()
                || (self.config.activation == crate::config::ActivationPolicy::WaitForRepair
                    && self.devices.degraded_disk().is_some());
            let Some(added) = self.activation.pop_eligible(blocked) else {
                break;
            };
            self.commit_expansion(now, added);
            self.activation.record(now, added);
        }
    }

    fn build_pc(config: &ArrayConfig, disks: usize) -> Result<CachePartition, CraidError> {
        if config.strategy.uses_ssd_cache() {
            let layout = Raid5Layout::new(
                config.ssd_cache_devices,
                config.ssd_cache_devices,
                config.stripe_unit,
                config.pc_blocks_per_ssd(),
            )?;
            // SSDs are addressed after all mechanical disks.
            Ok(CachePartition::new(layout, disks, 0))
        } else {
            let layout = Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                config.pc_blocks_per_hdd(),
            )?;
            Ok(CachePartition::new(layout, 0, 0))
        }
    }

    fn build_pa(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let offset = config.pc_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, offset))
    }

    /// Writes back a set of dirty blocks (used by the instant upgrade
    /// invalidation).
    fn write_back(
        &mut self,
        now: SimTime,
        tasks: &[crate::monitor::EvictionTask],
        report: &mut ExpansionReport,
    ) {
        let slots: Vec<u64> = tasks.iter().map(|t| t.pc_slot).collect();
        let pa_blocks: Vec<u64> = tasks.iter().map(|t| t.pa_block).collect();
        for io in self.pc.plan_blocks(IoKind::Read, &slots) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        for io in self.pa.plan_blocks(IoKind::Write, &pa_blocks) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        report.writeback_blocks += tasks.len() as u64;
    }

    /// Physical blocks per mechanical disk that actually hold data or
    /// parity — the live region a rebuild must reconstruct: the PC rows
    /// plus the archive's share of the scattered dataset (parity overhead
    /// included via the physical-to-logical ratio). Rebuilding only live
    /// stripes is the data-aware counterpart of CRAID's upgrade story.
    fn live_blocks_per_hdd(&self) -> u64 {
        let pa_live = fault::live_blocks(
            self.pa.layout().blocks_per_disk(),
            self.pa.data_capacity(),
            self.config.dataset_blocks,
        );
        self.config.pc_blocks_per_hdd() + pa_live
    }

    /// The rebuild's segment order for `disk`: sequential, or — under
    /// `HotFirst` — the cache-partition rows first, then the hottest
    /// archive stripes this disk holds, then the cold remainder.
    fn rebuild_plan(&self, disk: usize, live: u64) -> Vec<BlockRange> {
        let mut hot = Vec::new();
        if self.config.background_priority == BackgroundPriority::HotFirst {
            let pc_limit = self.config.pc_blocks_per_hdd();
            if pc_limit > 0 {
                hot.push(BlockRange::new(0, pc_limit));
            }
            // Rank globally, filter to this disk, and only then cap — so
            // the cap bounds the blocks this rebuild front-loads, not a
            // share of a global list diluted by the other disks.
            let on_disk: Vec<u64> = self
                .monitor
                .hottest_blocks(usize::MAX)
                .into_iter()
                .filter_map(|pa_block| {
                    let loc = self.pa.layout().locate(pa_block);
                    (loc.disk == disk).then_some(loc.block + self.pa.block_offset())
                })
                .collect();
            let mut physical = fault::cap_hot_blocks(on_disk);
            physical.sort_unstable();
            physical.dedup();
            hot.extend(merge_blocks_to_ranges(&physical));
        }
        fault::rebuild_segments(live, hot)
    }

    /// Forwards supersessions the redirector recorded against the archive
    /// restripe to the engine (as forfeited stream work) and the stats.
    fn flush_archive_forfeits(&mut self) {
        if let Some(state) = self.archive_restripe.as_mut() {
            let n = state.take_forfeits();
            if n > 0 {
                self.migration_stats.archive_superseded_blocks += n;
                self.background.forfeit(state.task, n);
            }
        }
    }

    /// Issues the device I/O moving one batch of migrated blocks into the
    /// rebuilt cache partition: read the pre-upgrade copy from its old
    /// slot, re-admit it (dirty bit preserved), write the new slot, and pay
    /// the write-backs of whatever the re-admissions displaced.
    fn apply_migration_batch(
        &mut self,
        now: SimTime,
        id: TaskId,
        blocks: &[u64],
    ) -> Vec<DeviceIoEvent> {
        // First settle the bookkeeping (map removal, re-admission,
        // displaced evictions), then plan the I/O — re-admitting first
        // means a block that turns out superseded never issues a phantom
        // old-slot read, and the planning pass can borrow the generation's
        // preserved geometry in place instead of cloning it per batch.
        let mut moves: Vec<(u64, u64)> = Vec::new();
        let mut writeback_slots: Vec<u64> = Vec::new();
        let mut writeback_pa_blocks: Vec<u64> = Vec::new();
        for &pa_block in blocks {
            // A block no longer pending *for this generation* was superseded
            // by client traffic (already counted) — the engine's budget
            // simply skips over it. The block may since have re-entered the
            // map under a *later* generation (client re-warmed it, then a
            // queued second expansion drained it again); that entry belongs
            // to the newer task, so this one must leave it alone.
            let home = match self.migration.get(pa_block) {
                Some(home) if generation_matches(home.generation, id) => {
                    crate::choice::observe(|| crate::choice::Observation::MigrationApply {
                        block: pa_block,
                        entry_generation: home.generation,
                        task_generation: id,
                    });
                    self.migration.remove(pa_block);
                    home
                }
                _ => continue,
            };
            let old_slot = home.pc_slot;
            let Some((new_slot, evictions)) =
                self.monitor.readmit(pa_block, home.dirty, &mut self.pc)
            else {
                // Residency raced ahead of the map — treat as superseded.
                self.migration_stats.superseded_blocks += 1;
                continue;
            };
            moves.push((old_slot, new_slot));
            self.migration_stats.migrated_blocks += 1;
            for task in evictions {
                if task.dirty {
                    self.migration_stats.writeback_blocks += 1;
                    writeback_slots.push(task.pc_slot);
                    writeback_pa_blocks.push(task.pa_block);
                }
            }
        }
        let old_pc = self
            .old_pcs
            .get(&id)
            .expect("a migration task implies a preserved old PC geometry");
        let mut old_ios: Vec<PartitionIo> = Vec::new();
        let mut new_ios: Vec<PartitionIo> = Vec::new();
        for &(old_slot, new_slot) in &moves {
            for io in old_pc.plan_blocks(IoKind::Read, &[old_slot]) {
                old_ios.push(PartitionIo {
                    purpose: IoPurpose::MigrateRead,
                    ..io
                });
            }
            for io in self.pc.plan_blocks(IoKind::Write, &[new_slot]) {
                new_ios.push(PartitionIo {
                    purpose: if io.purpose == IoPurpose::Data {
                        IoPurpose::MigrateWrite
                    } else {
                        io.purpose
                    },
                    ..io
                });
            }
        }
        new_ios.extend(self.pc.plan_blocks(IoKind::Read, &writeback_slots));
        // Displaced dirty write-backs land at the archive's reshaped homes
        // and supersede any pending restripe moves of the same blocks.
        if let Some(state) = self.archive_restripe.as_mut() {
            for &b in &writeback_pa_blocks {
                state.supersede(&self.pa, b);
            }
        }
        new_ios.extend(self.pa.plan_blocks(IoKind::Write, &writeback_pa_blocks));
        self.flush_archive_forfeits();
        // Old-geometry reads reconstruct via the old parity groups; the
        // rest via the current layouts.
        let mut ios = self.degrade_old_pc(id, old_ios);
        ios.extend(self.degrade(new_ios));
        let mut events = Vec::with_capacity(ios.len());
        for io in ios {
            events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        events
    }

    /// Issues the device I/O for the next `budget` archive-restripe moves:
    /// advance the cursor, read each block's pre-reshape location, write
    /// its reshaped home (parity maintenance included).
    fn apply_archive_batch(&mut self, now: SimTime, budget: u64) -> Vec<DeviceIoEvent> {
        let (moved, ios) = self
            .archive_restripe
            .as_mut()
            .expect("a restripe batch implies restripe state")
            .plan_batch(&self.pa, budget);
        self.migration_stats.archive_migrated_blocks += moved;
        // An ideal-archive reshape preserves the parity-group width (the
        // expanded count must stay a multiple of the group), so the current
        // layout's peers are also correct for pre-reshape locations.
        let ios = self.degrade(ios);
        let mut events = Vec::with_capacity(ios.len());
        for io in ios {
            events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        events
    }

    /// Degraded-mode rewrite for I/O planned against a *pre-upgrade* cache
    /// partition: reconstruction peers come from that generation's parity
    /// groups — the groups that actually protect those copies — not the
    /// rebuilt one (the two can group disks differently when the expanded
    /// count stops dividing by the parity group).
    fn degrade_old_pc(&mut self, generation: TaskId, plan: Vec<PartitionIo>) -> Vec<PartitionIo> {
        let Some((failed, state)) = self.devices.degraded_disk() else {
            return plan;
        };
        let old_layout = self
            .old_pcs
            .get(&generation)
            .expect("old-geometry I/O implies a preserved old PC")
            .layout()
            .clone();
        fault::degrade_plan(
            plan,
            failed,
            state == DiskState::Rebuilding,
            |io| old_layout.reconstruction_peers(io.disk),
            &mut self.fault_stats,
        )
    }

    /// Rewrites a plan for degraded mode when a disk is failed or
    /// rebuilding; a no-op on a healthy array.
    fn degrade(&mut self, plan: Vec<PartitionIo>) -> Vec<PartitionIo> {
        let Some((failed, state)) = self.devices.degraded_disk() else {
            return plan;
        };
        // Degraded mode: reads of the lost disk are reconstructed from its
        // parity-group peers — the PC and PA layouts group disks
        // differently, so the peer set depends on which per-disk region the
        // I/O falls in.
        let pc_limit = self.config.pc_blocks_per_hdd();
        let pc_layout = self.pc.layout();
        let pa_layout = self.pa.layout();
        let peers_for = |io: &PartitionIo| {
            if io.range.start() < pc_limit {
                pc_layout.reconstruction_peers(io.disk)
            } else {
                pa_layout.reconstruction_peers(io.disk)
            }
        };
        fault::degrade_plan(
            plan,
            failed,
            state == DiskState::Rebuilding,
            peers_for,
            &mut self.fault_stats,
        )
    }

    /// Read access to the cache partition (examples and tests).
    pub fn cache_partition(&self) -> &CachePartition {
        &self.pc
    }

    /// Read access to the I/O monitor (examples and tests).
    pub fn monitor(&self) -> &IoMonitor {
        &self.monitor
    }

    /// Blocks paced upgrades still have to redistribute into the cache
    /// partition (0 when idle; the archive restripe reports separately).
    pub fn pending_migration_blocks(&self) -> u64 {
        self.migration.len() as u64
    }

    /// True if `pa_block` is still awaiting redistribution to its
    /// post-upgrade cache-partition slot (tests and examples).
    pub fn migration_pending(&self, pa_block: u64) -> bool {
        self.migration.contains(pa_block)
    }

    /// Archive-restripe moves still pending (0 when no reshape is in
    /// flight).
    pub fn pending_archive_blocks(&self) -> u64 {
        self.archive_restripe
            .as_ref()
            .map_or(0, RestripeState::pending)
    }

    /// Expansions accepted but not yet activated (queued behind an
    /// in-flight archive restripe).
    pub fn deferred_expansions(&self) -> usize {
        self.activation.len()
    }

    /// Performs a validated expansion: commits the new geometry, enqueues
    /// the paced PC redistribution and — for ideal archives — the paced
    /// archive restripe.
    fn commit_expansion(&mut self, now: SimTime, added_disks: usize) -> ExpansionReport {
        let paced = !self.config.instant_migration();
        let new_disks = self.disks + added_disks;
        let mut new_sets = self.expansion_sets.clone();
        if self.config.strategy.archive_is_aggregated() {
            new_sets.push(added_disks);
        }
        let new_pa = Self::build_pa(&self.config, new_disks, &new_sets)
            .expect("expansion geometry was validated before commit");
        let spreads_pc_over_hdds = !self.config.strategy.uses_ssd_cache();
        let new_pc_layout = if spreads_pc_over_hdds {
            // PC must keep using every disk: it is rebuilt over the new set
            // of spindles and starts refilling immediately. When the count
            // stops dividing evenly, parity groups stay aligned by treating
            // the whole array as one group.
            let group = if new_disks.is_multiple_of(self.config.parity_group) {
                self.config.parity_group
            } else {
                new_disks
            };
            Some(
                Raid5Layout::new(
                    new_disks,
                    group,
                    self.config.stripe_unit,
                    self.config.pc_blocks_per_hdd(),
                )
                .expect("expansion geometry was validated before commit"),
            )
        } else {
            None
        };

        let mut report = ExpansionReport {
            added_disks,
            ..ExpansionReport::default()
        };
        if let Some(pc_layout) = new_pc_layout {
            // Migration for CRAID is bounded by what currently lives in PC.
            report.migrated_blocks = self.monitor.cached_blocks() as u64;
            if paced {
                // The new layout commits now; the block copies stream
                // through the background engine. Every cached block (clean
                // and dirty, with its dirty bit) is queued for
                // redistribution into the rebuilt PC; until a block's turn
                // comes, the MigrationMap serves it from its old slot in
                // this generation's preserved geometry.
                let drained = self.monitor.begin_migration(&mut self.pc);
                let mut order: Vec<u64> = drained.iter().map(|&(pa, _)| pa).collect();
                if self.config.background_priority == BackgroundPriority::HotFirst {
                    self.monitor.rank_hot_desc(&mut order);
                }
                report.enqueued_blocks = order.len() as u64;
                let generation = self.background.push_migration(
                    now,
                    order,
                    self.config
                        .migration_rate_blocks_per_sec
                        .expect("paced expansions have a finite rate"),
                );
                self.old_pcs.insert(generation, self.pc.clone());
                for (pa_block, mapping) in drained {
                    self.migration.insert(
                        pa_block,
                        OldHome {
                            pc_slot: mapping.pc_block,
                            dirty: mapping.dirty,
                            generation,
                        },
                    );
                }
                self.devices.add_hdds(added_disks);
                self.pc.rebuild(pc_layout, 0, 0);
                self.monitor.resize(self.pc.capacity());
                self.migration_stats.migrations_started += 1;
                self.migration_stats.effective_priority = Some(self.config.background_priority);
            } else {
                // Instant upgrade: the dirty copies are written back now,
                // the rest is simply invalidated and re-copied on demand as
                // the working set is touched again.
                let tasks = self.monitor.invalidate_all(&mut self.pc);
                self.write_back(now, &tasks, &mut report);
                self.devices.add_hdds(added_disks);
                self.pc.rebuild(pc_layout, 0, 0);
                self.monitor.resize(self.pc.capacity());
            }
        } else {
            // A dedicated-SSD cache tier keeps its contents when mechanical
            // disks are added; only the SSDs' device indices shift, because
            // the new spindles are spliced in front of them.
            self.devices.add_hdds(added_disks);
            self.pc.rebind_first_device(new_disks);
        }
        if paced && !self.config.strategy.archive_is_aggregated() {
            // The ideal archive's reshape onto the grown set is no longer
            // free: it streams as its own rate-paced task (the paper's
            // conventional-upgrade cost, reported on the archive line of
            // MigrationStats). Pushed even when the move set is empty —
            // like the baseline's restripe — so its completion always
            // fires and a deferred expansion queued behind it can never be
            // stranded. The restripe cursor walks sequentially regardless
            // of the configured priority; when this expansion started no
            // PC redistribution (the SSD-cached variants), record that
            // *effective* order so a hot-first knob cannot masquerade as
            // having run.
            let mut state =
                RestripeState::new(self.pa.clone(), &new_pa, self.config.dataset_blocks);
            state.task = self.background.push_restripe(
                now,
                state.total_moves(),
                self.config
                    .migration_rate_blocks_per_sec
                    .expect("paced expansions have a finite rate"),
            );
            self.archive_restripe = Some(state);
            self.migration_stats.archive_restripes_started += 1;
            if self.migration_stats.effective_priority.is_none() || report.enqueued_blocks == 0 {
                self.migration_stats.effective_priority = Some(BackgroundPriority::Sequential);
            }
        }
        self.pa = new_pa;
        self.expansion_sets = new_sets;
        self.disks = new_disks;
        report
    }
}

impl StorageArray for CraidArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.pa.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        self.pc.capacity()
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.pa.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.pa.data_capacity(),
            });
        }
        // Mid-upgrade redirection: blocks the paced migration has not
        // reached yet resolve against the MigrationMap first. Dirty pending
        // blocks are *only* valid at their old PC slot, so reads fetch them
        // from there; everything the client touches otherwise (clean reads,
        // all writes) proceeds against the post-upgrade layout and
        // supersedes the pending move — writes land at the new home.
        let mut old_slot_reads: BTreeMap<TaskId, Vec<u64>> = BTreeMap::new();
        let mut pending_hits = 0u64;
        let plan_blocks: Option<Vec<u64>> = if self.migration.is_empty() {
            None
        } else {
            let mut fresh = Vec::with_capacity(range.len() as usize);
            for pa_block in range.blocks() {
                match self.migration.get(pa_block) {
                    Some(home) if home.dirty && kind == IoKind::Read => {
                        pending_hits += 1;
                        old_slot_reads
                            .entry(home.generation)
                            .or_default()
                            .push(home.pc_slot);
                    }
                    Some(_) => {
                        self.migration.remove(pa_block);
                        self.migration_stats.superseded_blocks += 1;
                        fresh.push(pa_block);
                    }
                    None => fresh.push(pa_block),
                }
            }
            Some(fresh)
        };
        let mut plan = {
            let mut access = match self.archive_restripe.as_mut() {
                Some(state) => ArchiveAccess::Restriping {
                    current: &self.pa,
                    restripe: state,
                },
                None => ArchiveAccess::Plain(&self.pa),
            };
            match &plan_blocks {
                // Fast path: no PC migration in flight, no per-block triage
                // (and no block-list allocation).
                None => redirector::plan_request_via(
                    &mut self.monitor,
                    &mut self.pc,
                    &mut access,
                    kind,
                    range,
                    &mut self.plan_scratch,
                ),
                Some(fresh) => redirector::plan_request_blocks_via(
                    &mut self.monitor,
                    &mut self.pc,
                    &mut access,
                    kind,
                    fresh,
                    range.len(),
                    &mut self.plan_scratch,
                ),
            }
        };
        self.flush_archive_forfeits();
        plan.cache_hit_blocks += pending_hits;

        let mut report = RequestReport {
            cache_hit_blocks: plan.cache_hit_blocks,
            admitted_blocks: plan.admitted_blocks,
            evictions: plan.evictions,
            dirty_writebacks: plan.dirty_writebacks,
            ..RequestReport::default()
        };
        plan.foreground = self.degrade(plan.foreground);
        for (generation, slots) in old_slot_reads {
            let old_pc = self
                .old_pcs
                .get(&generation)
                .expect("pending dirty blocks imply a preserved old PC geometry");
            let old_ios = old_pc.plan_blocks(IoKind::Read, &slots);
            let degraded_old = self.degrade_old_pc(generation, old_ios);
            plan.foreground.extend(degraded_old);
        }
        plan.background = self.degrade(plan.background);
        let mut finish = now;
        for io in plan.foreground {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(ev.finished);
            report.events.push(ev);
        }
        for io in plan.background {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            report.events.push(ev);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        // The upgrade commits transactionally: every precondition is checked
        // *before* the cache partition is touched or any device/geometry
        // state changes, so a rejected expansion leaves the array exactly
        // as it was.
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        let paced = !self.config.instant_migration();
        if let Some((disk, state)) = self.devices.degraded_disk() {
            // A failed disk has no data to redistribute. A *rebuilding* one
            // is fine when the upgrade is paced: the migration task simply
            // fair-shares the background engine with the rebuild. The
            // instant path keeps refusing, bit-for-bit with the pre-engine
            // behaviour. (The in-flight rebuild keeps the segment plan it
            // was created with — a deliberate approximation: the physical
            // device is unchanged, but its live share shrinks under the
            // post-expansion geometry, so rebuild traffic errs on the
            // generous side.)
            if state == DiskState::Failed || !paced {
                return Err(CraidError::InvalidExpansion(format!(
                    "disk {disk} is {state:?}; wait until the array is healthy before expanding"
                )));
            }
        }
        if !paced && !self.migration.is_empty() {
            return Err(CraidError::InvalidExpansion(
                "a previous upgrade's migration is still in flight".into(),
            ));
        }
        // Validate the geometry against the *projected* disk count so a
        // deferred expansion can never fail at activation time.
        let projected = self.disks + self.activation.pending_disks() + added_disks;
        if self.config.strategy.archive_is_aggregated() {
            if added_disks < 2 {
                return Err(CraidError::InvalidExpansion(
                    "a new RAID-5 set needs at least 2 disks".into(),
                ));
            }
        } else if !projected.is_multiple_of(self.config.parity_group) {
            return Err(CraidError::InvalidExpansion(format!(
                "the ideal RAID-5 archive needs the disk count ({projected}) to stay a multiple of the parity group ({})",
                self.config.parity_group
            )));
        }
        if self.archive_restripe.is_some() {
            // One archive reshape at a time (a cursor cannot retarget a
            // moving layout): the expansion queues and activates when the
            // in-flight restripe drains. PC-only upgrades (the aggregated
            // `+` variants) never enter this branch and pipeline freely.
            self.activation.defer(added_disks);
            return Ok(ExpansionReport {
                added_disks,
                deferred: true,
                ..ExpansionReport::default()
            });
        }
        Ok(self.commit_expansion(now, added_disks))
    }

    fn fail_disk(&mut self, _now: SimTime, disk: usize) -> Result<(), CraidError> {
        self.devices.fail_disk(disk)?;
        self.fault_stats.disk_failures += 1;
        Ok(())
    }

    fn repair_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError> {
        // The rebuild streams the whole device image; its peers are the
        // archive layout's parity group (the PC rows of the disk are
        // reconstructed from the same spindles on the paper's shapes).
        let peers = self.pa.layout().reconstruction_peers(disk);
        let live = self
            .live_blocks_per_hdd()
            .min(self.devices.capacity_blocks(disk))
            .max(1);
        let segments = self.rebuild_plan(disk, live);
        fault::start_rebuild(
            &mut self.background,
            &mut self.devices,
            now,
            disk,
            peers,
            segments,
            self.config.rebuild_rate_blocks_per_sec,
            &mut self.fault_stats,
        )
    }

    fn pump_background(&mut self, now: SimTime) -> Vec<DeviceIoEvent> {
        let mut events = Vec::new();
        self.pump_background_into(now, &mut events);
        events
    }

    fn pump_background_into(&mut self, now: SimTime, events: &mut Vec<DeviceIoEvent>) {
        for batch in self.background.poll(now) {
            match batch {
                Batch::Rebuild {
                    disk,
                    peers,
                    ranges,
                    ..
                } => {
                    fault::issue_rebuild_batch(
                        now,
                        disk,
                        &peers,
                        &ranges,
                        &mut self.devices,
                        events,
                        &mut self.fault_stats,
                    );
                }
                Batch::Migration { id, blocks } => {
                    events.extend(self.apply_migration_batch(now, id, &blocks));
                }
                Batch::Restripe { budget, .. } => {
                    events.extend(self.apply_archive_batch(now, budget));
                }
            }
        }
        for done in self.background.take_completed() {
            match done.kind {
                TaskKind::Rebuild => {
                    fault::complete_rebuild(&done, &mut self.devices, &mut self.fault_stats);
                }
                TaskKind::ExpansionMigration => {
                    debug_assert!(
                        self.migration.iter().all(|(_, h)| h.generation != done.id),
                        "a drained migration leaves no pending blocks of its generation"
                    );
                    self.old_pcs.remove(&done.id);
                    self.migration_stats.migrations_completed += 1;
                    self.migration_stats.migration_secs += done.window_secs;
                }
                TaskKind::ArchiveRestripe => {
                    debug_assert!(
                        self.archive_restripe
                            .as_ref()
                            .is_some_and(RestripeState::drained),
                        "a completed restripe leaves no pending moves"
                    );
                    self.archive_restripe = None;
                    self.migration_stats.archive_restripes_completed += 1;
                    self.migration_stats.archive_restripe_secs += done.window_secs;
                }
            }
        }
        // A queued expansion activates the moment the reshape that blocked
        // it drains — by default even if the array has since degraded (a
        // deliberate modeling choice: the activation was accepted while
        // healthy, and all of its maintenance I/O runs through `degrade`
        // like any other traffic, so the model stays total and
        // deterministic rather than stranding the queue on a disk that may
        // never be repaired). With `activation = "wait-for-repair"` the
        // activation instead holds until the rebuild completes; the same
        // check after the completions loop is what releases it then.
        self.maybe_activate_deferred(now);
        // Under the model checker, audit the exactly-one-location invariant
        // at every pump boundary: no block may be pending migration and
        // cache-resident at once (one copy is authoritative).
        if crate::choice::active() {
            for (pa_block, _) in self.migration.iter() {
                if self.monitor.cached_slot(pa_block).is_some() {
                    crate::choice::observe(|| crate::choice::Observation::Colocated {
                        block: pa_block,
                    });
                }
            }
        }
    }

    fn background_work_due(&mut self, now: SimTime) -> bool {
        // Deferred expansions cannot unblock between pumps: the reshape or
        // rebuild gating them completes *inside* a pump (and the empty task
        // it leaves reports "due now"), so the engine's pacing clocks alone
        // decide whether polling can do anything.
        self.background.work_due(now)
    }

    fn background_idle(&self) -> bool {
        // A deferred expansion blocked by wait-for-repair on a *failed*
        // disk (no repair scheduled, so no rebuild task exists) counts as
        // idle: nothing can make progress until a `disk-repair` event
        // arrives, and the end-of-trace drain must not spin on it.
        self.background.is_idle()
            && self
                .activation
                .idle_under(self.config.activation, self.devices.degraded_disk().is_some())
    }

    fn set_background_throttle(&mut self, now: SimTime, scale: f64) {
        self.background.set_throttle(now, scale);
    }

    fn take_activations(&mut self) -> Vec<super::ActivatedExpansion> {
        self.activation.take_activations()
    }

    fn background_drain_eta(&self) -> Option<SimTime> {
        self.background.drain_eta()
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    fn migration_stats(&self) -> MigrationStats {
        MigrationStats {
            pending_blocks: self.migration.len() as u64,
            archive_pending_blocks: self.pending_archive_blocks(),
            ..self.migration_stats
        }
    }

    fn switch_policy(
        &mut self,
        _now: SimTime,
        policy: craid_cache::PolicyKind,
    ) -> Result<(), CraidError> {
        self.monitor.switch_policy(policy);
        self.config.policy = policy;
        Ok(())
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        Some(*self.monitor.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_simkit::SimDuration;

    fn array(strategy: StrategyKind) -> CraidArray {
        CraidArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    fn paced(strategy: StrategyKind, rate: f64, priority: BackgroundPriority) -> CraidArray {
        let config = ArrayConfig::small_test(strategy, 10_000)
            .with_migration_rate(Some(rate))
            .with_background_priority(priority);
        CraidArray::new(config).unwrap()
    }

    fn drain(a: &mut CraidArray, mut t: f64) -> f64 {
        while !a.background_idle() && t < 5_000.0 {
            a.pump_background(SimTime::from_secs(t));
            t += 1.0;
        }
        assert!(a.background_idle());
        t
    }

    #[test]
    fn cold_read_goes_to_archive_then_caches() {
        let mut a = array(StrategyKind::Craid5);
        let r1 = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(500, 4))
            .unwrap();
        assert_eq!(r1.cache_hit_blocks, 0);
        assert_eq!(r1.admitted_blocks, 4);
        // Second read of the same blocks hits the cache partition.
        let r2 = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(500, 4),
            )
            .unwrap();
        assert_eq!(r2.cache_hit_blocks, 4);
        assert_eq!(r2.admitted_blocks, 0);
        let stats = a.monitor_stats().unwrap();
        assert_eq!(stats.read_hits, 4);
        assert_eq!(stats.read_accesses, 8);
    }

    #[test]
    fn repeated_hot_reads_get_faster_than_cold_reads() {
        let mut a = array(StrategyKind::Craid5);
        let cold = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(2_000, 4))
            .unwrap()
            .response;
        // Touch it a few times so it is firmly resident and the disks are idle.
        let mut warm = SimDuration::ZERO;
        for i in 1..=3 {
            warm = a
                .submit(
                    SimTime::from_secs(i as f64 * 10.0),
                    IoKind::Read,
                    BlockRange::new(2_000, 4),
                )
                .unwrap()
                .response;
        }
        assert!(
            warm <= cold,
            "warm read ({warm}) should not be slower than the cold read ({cold})"
        );
    }

    #[test]
    fn writes_are_absorbed_by_the_cache_partition() {
        let mut a = array(StrategyKind::Craid5);
        let pc_limit = a.config.pc_blocks_per_hdd();
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(9_000, 2))
            .unwrap();
        assert_eq!(r.admitted_blocks, 2);
        assert!(
            r.events.iter().all(|e| e.start_block < pc_limit),
            "all I/O for an absorbed write stays inside the PC region"
        );
    }

    #[test]
    fn ssd_variant_sends_cache_traffic_to_ssds() {
        let mut a = array(StrategyKind::Craid5Ssd);
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(
            r.events.iter().all(|e| e.device >= 8),
            "writes are absorbed by the dedicated SSDs"
        );
        // A cold read touches the archive (HDDs) and copies to the SSDs.
        let r = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(5_000, 2),
            )
            .unwrap();
        assert!(r.events.iter().any(|e| e.device < 8));
        assert!(r.events.iter().any(|e| e.device >= 8));
    }

    #[test]
    fn expansion_invalidates_pc_and_grows_it() {
        let mut a = array(StrategyKind::Craid5Plus);
        // Warm the cache with some dirty blocks.
        for b in 0..40u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 8, 4),
            )
            .unwrap();
        }
        let cached_before = a.monitor().cached_blocks();
        assert!(cached_before > 0);
        let pc_before = a.pc_capacity_blocks();
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        assert_eq!(report.added_disks, 4);
        assert_eq!(report.migrated_blocks, cached_before as u64);
        assert!(report.writeback_blocks > 0, "dirty blocks are written back");
        assert!(!report.events.is_empty());
        assert_eq!(
            report.enqueued_blocks, 0,
            "instant upgrades enqueue nothing"
        );
        assert_eq!(a.disk_count(), 12);
        assert!(a.pc_capacity_blocks() > pc_before, "PC now spans 12 disks");
        assert_eq!(a.monitor().cached_blocks(), 0, "PC starts cold again");
        // The array keeps serving and refilling after the upgrade.
        let r = a
            .submit(
                SimTime::from_secs(20.0),
                IoKind::Read,
                BlockRange::new(0, 4),
            )
            .unwrap();
        assert_eq!(r.admitted_blocks, 4);
    }

    #[test]
    fn expansion_migration_is_bounded_by_pc_residency() {
        let mut a = array(StrategyKind::Craid5Plus);
        for b in 0..100u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Read,
                BlockRange::new(b * 16, 2),
            )
            .unwrap();
        }
        let report = a.expand(SimTime::from_secs(5.0), 4).unwrap();
        assert!(report.migrated_blocks <= a.pc_capacity_blocks().max(report.migrated_blocks));
        assert!(
            report.migrated_blocks < 10_000 / 2,
            "CRAID migrates far less than the dataset"
        );
    }

    #[test]
    fn ssd_cached_expansion_keeps_cache_intact() {
        let mut a = array(StrategyKind::Craid5PlusSsd);
        for b in 0..20u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 4, 2),
            )
            .unwrap();
        }
        let cached = a.monitor().cached_blocks();
        let report = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(report.writeback_blocks, 0);
        assert_eq!(
            a.monitor().cached_blocks(),
            cached,
            "the SSD cache survives"
        );
    }

    #[test]
    fn out_of_range_and_invalid_expansion_are_rejected() {
        let mut a = array(StrategyKind::Craid5);
        let cap = a.capacity_blocks();
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .is_err());
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        let mut plus = array(StrategyKind::Craid5Plus);
        assert!(plus.expand(SimTime::ZERO, 1).is_err());
    }

    /// Warms an array with a deterministic mixed workload.
    fn warm(a: &mut CraidArray) {
        for b in 0..60u64 {
            let kind = if b % 3 == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            };
            a.submit(
                SimTime::from_millis(b as f64 * 5.0),
                kind,
                BlockRange::new(b * 16 % 9_000, 4),
            )
            .unwrap();
        }
    }

    #[test]
    fn rejected_expansion_leaves_the_array_bit_identical() {
        // Two identically warmed arrays; one suffers a rejected expansion.
        let mut touched = array(StrategyKind::Craid5);
        let mut pristine = array(StrategyKind::Craid5);
        warm(&mut touched);
        warm(&mut pristine);

        // 8 + 3 = 11 is not a multiple of the parity group (4): rejected.
        let err = touched.expand(SimTime::from_secs(1.0), 3).unwrap_err();
        assert!(matches!(err, CraidError::InvalidExpansion(_)));

        // Every piece of reported state matches the untouched twin.
        assert_eq!(touched.disk_count(), pristine.disk_count());
        assert_eq!(touched.device_count(), pristine.device_count());
        assert_eq!(touched.capacity_blocks(), pristine.capacity_blocks());
        assert_eq!(touched.pc_capacity_blocks(), pristine.pc_capacity_blocks());
        assert_eq!(
            touched.monitor().cached_blocks(),
            pristine.monitor().cached_blocks(),
            "the cache partition was not invalidated"
        );
        assert_eq!(touched.monitor_stats(), pristine.monitor_stats());
        assert_eq!(touched.device_stats(), pristine.device_stats());

        // Subsequent traffic behaves byte-identically on both arrays.
        for b in [100u64, 3_000, 8_000] {
            let now = SimTime::from_secs(2.0 + b as f64);
            let got = touched
                .submit(now, IoKind::Read, BlockRange::new(b, 4))
                .unwrap();
            let want = pristine
                .submit(now, IoKind::Read, BlockRange::new(b, 4))
                .unwrap();
            assert_eq!(got, want, "block {b} diverged after the failed expand");
        }
    }

    #[test]
    fn ssd_expansion_keeps_cache_traffic_on_the_shifted_ssds() {
        let mut a = array(StrategyKind::Craid5PlusSsd);
        a.submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 2))
            .unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        // The SSDs moved from 8..11 to 12..15; the surviving cached copy
        // must be read from there, not from the freshly added spindles.
        let r = a
            .submit(SimTime::from_secs(2.0), IoKind::Read, BlockRange::new(0, 2))
            .unwrap();
        assert_eq!(r.cache_hit_blocks, 2);
        assert!(
            r.events.iter().all(|e| e.device >= 12),
            "cache hits must target the shifted SSDs, got {:?}",
            r.events.iter().map(|e| e.device).collect::<Vec<_>>()
        );
    }

    #[test]
    fn degraded_reads_reconstruct_from_surviving_group_members() {
        use craid_raid::IoPurpose;
        let mut a = array(StrategyKind::Craid5);
        // Find a block whose archive location is disk 1 and make it hot is
        // unnecessary — a cold read of a wide range will touch disk 1.
        a.fail_disk(SimTime::ZERO, 1).unwrap();
        let requests_before: Vec<u64> = a.device_stats().iter().map(|s| s.requests).collect();
        let mut saw_reconstruction = false;
        for b in 0..40u64 {
            let r = a
                .submit(
                    SimTime::from_millis(b as f64 * 10.0),
                    IoKind::Read,
                    BlockRange::new(b * 64, 8),
                )
                .unwrap();
            assert!(
                r.events.iter().all(|e| e.device != 1),
                "no I/O may reach the failed disk"
            );
            saw_reconstruction |= r
                .events
                .iter()
                .any(|e| e.purpose == IoPurpose::ReconstructRead);
        }
        assert!(saw_reconstruction, "some read must have needed disk 1");
        let stats = a.fault_stats();
        assert!(stats.degraded_reads > 0);
        assert_eq!(stats.disk_failures, 1);
        // The fan-out is visible in the surviving members' load stats:
        // disks 0, 2, 3 (disk 1's parity group) picked up extra requests.
        let requests_after: Vec<u64> = a.device_stats().iter().map(|s| s.requests).collect();
        assert_eq!(requests_after[1], requests_before[1]);
        for peer in [0usize, 2, 3] {
            assert!(requests_after[peer] > requests_before[peer]);
        }
    }

    #[test]
    fn repair_streams_the_rebuild_and_heals_the_array() {
        use craid_raid::IoPurpose;
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5, 10_000);
        config.rebuild_rate_blocks_per_sec = 1_000_000.0;
        let mut a = CraidArray::new(config).unwrap();
        a.fail_disk(SimTime::ZERO, 2).unwrap();
        // Expanding a degraded array is refused (instant-migration mode).
        assert!(matches!(
            a.expand(SimTime::from_secs(0.5), 4),
            Err(CraidError::InvalidExpansion(_))
        ));
        a.repair_disk(SimTime::from_secs(1.0), 2).unwrap();
        assert!(!a.background_idle());
        // Client traffic interleaves with the rebuild stream until the
        // spare holds the full image.
        let mut t = 2.0;
        let mut saw_rebuild_write = false;
        while a.fault_stats().rebuilds_completed == 0 && t < 100.0 {
            let bg = a.pump_background(SimTime::from_secs(t));
            saw_rebuild_write |= bg
                .iter()
                .any(|e| e.purpose == IoPurpose::RebuildWrite && e.device == 2);
            a.submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
                .unwrap();
            t += 1.0;
        }
        assert!(saw_rebuild_write, "the rebuild streamed onto the spare");
        let stats = a.fault_stats();
        assert_eq!(stats.rebuilds_completed, 1);
        assert!(stats.rebuild_secs > 0.0);
        assert!(stats.mttr_secs() > 0.0);
        assert_eq!(stats.rebuild_write_blocks, a.live_blocks_per_hdd());
        assert!(
            stats.rebuild_write_blocks < 2 * 1024 * 1024 / 10,
            "a data-aware rebuild reconstructs only live stripes, not the \
             whole 2M-block device"
        );
        assert!(a.background_idle());
        // Healed: expansion works again and reads stop fanning out.
        let degraded_before = a.fault_stats().degraded_reads;
        a.submit(
            SimTime::from_secs(t + 1.0),
            IoKind::Read,
            BlockRange::new(5_000, 4),
        )
        .unwrap();
        assert_eq!(a.fault_stats().degraded_reads, degraded_before);
        assert!(a.expand(SimTime::from_secs(t + 2.0), 4).is_ok());
    }

    #[test]
    fn eviction_pressure_produces_writebacks() {
        let mut a = array(StrategyKind::Craid5);
        let pc = a.pc_capacity_blocks();
        // Write twice the PC capacity of distinct blocks: must evict dirty
        // victims and pay archive write-backs.
        let mut dirty_writebacks = 0;
        for i in 0..(2 * pc) {
            let r = a
                .submit(
                    SimTime::from_millis(i as f64),
                    IoKind::Write,
                    BlockRange::new((i * 7) % 9_000, 1),
                )
                .unwrap();
            dirty_writebacks += r.dirty_writebacks;
        }
        assert!(dirty_writebacks > 0);
        let stats = a.monitor_stats().unwrap();
        assert!(stats.dirty_evictions > 0);
        assert!(stats.write_eviction_ratio() > 0.0);
    }

    #[test]
    fn paced_expansion_commits_layout_and_streams_the_copies() {
        let mut a = paced(
            StrategyKind::Craid5Plus,
            50.0,
            BackgroundPriority::Sequential,
        );
        warm(&mut a);
        let cached = a.monitor().cached_blocks() as u64;
        assert!(cached > 0);
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        // The layout committed immediately...
        assert_eq!(a.disk_count(), 12);
        assert_eq!(report.enqueued_blocks, cached);
        assert!(report.events.is_empty(), "no upgrade I/O at event time");
        assert_eq!(report.writeback_blocks, 0, "dirty copies move, not flush");
        assert_eq!(a.pending_migration_blocks(), cached);
        assert!(!a.background_idle());
        assert_eq!(
            a.migration_stats().effective_priority,
            Some(BackgroundPriority::Sequential)
        );
        // ...and the copies stream through the background engine.
        let mut t = 11.0;
        let mut migrate_events = 0usize;
        while !a.background_idle() && t < 500.0 {
            let events = a.pump_background(SimTime::from_secs(t));
            migrate_events += events.iter().filter(|e| e.purpose.is_migration()).count();
            t += 1.0;
        }
        assert!(a.background_idle(), "the migration drained");
        assert!(migrate_events > 0, "migration I/O flowed");
        let stats = a.migration_stats();
        assert_eq!(stats.migrations_started, 1);
        assert_eq!(stats.migrations_completed, 1);
        assert_eq!(stats.migrated_blocks + stats.superseded_blocks, cached);
        assert_eq!(stats.pending_blocks, 0);
        assert!(stats.migration_secs > 0.0, "a nonzero upgrade window");
        assert_eq!(
            stats.archive_restripes_started, 0,
            "aggregated archives never restripe"
        );
        // The migrated working set is resident again: hot reads hit.
        assert_eq!(a.monitor().cached_blocks() as u64, stats.migrated_blocks);
    }

    #[test]
    fn paced_craid5_upgrade_pays_the_archive_restripe() {
        let mut a = paced(
            StrategyKind::Craid5,
            100_000.0,
            BackgroundPriority::Sequential,
        );
        warm(&mut a);
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        assert!(report.enqueued_blocks > 0, "the PC redistribution enqueued");
        // The ideal archive's reshape is no longer free: it rides the
        // engine as its own paced task with its own stats line.
        let stats = a.migration_stats();
        assert_eq!(stats.archive_restripes_started, 1);
        assert!(
            stats.archive_pending_blocks as f64 > 0.5 * 10_000.0,
            "the reshape moves most of the dataset, got {}",
            stats.archive_pending_blocks
        );
        assert!(a.pending_archive_blocks() > 0);
        let mut t = 11.0;
        let mut migrate_events = 0usize;
        while !a.background_idle() && t < 500.0 {
            let events = a.pump_background(SimTime::from_secs(t));
            migrate_events += events.iter().filter(|e| e.purpose.is_migration()).count();
            t += 1.0;
        }
        migrate_events.checked_sub(1).expect("restripe I/O flowed");
        let stats = a.migration_stats();
        assert_eq!(stats.archive_restripes_completed, 1);
        assert!(stats.archive_restripe_secs > 0.0, "a nonzero reshape cost");
        assert_eq!(stats.archive_pending_blocks, 0);
        assert!(
            stats.archive_migrated_blocks + stats.archive_superseded_blocks > 5_000,
            "the conventional cost is visible: {} blocks reshaped",
            stats.archive_migrated_blocks
        );
        // The PC redistribution completed alongside it (fair share).
        assert_eq!(stats.migrations_completed, 1);
        // After the drain the array serves normally.
        assert!(a
            .submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn archive_pending_reads_resolve_through_the_old_layout() {
        let mut a = paced(StrategyKind::Craid5, 1.0, BackgroundPriority::Sequential);
        let old_pa = a.pa.clone();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        // Find an uncached block whose archive location changed.
        let state = a.archive_restripe.as_ref().unwrap();
        let pending = (0..10_000u64)
            .find(|&b| state.is_pending(&a.pa, b) && a.monitor.cached_slot(b).is_none())
            .expect("an 8→12 reshape moves uncached blocks");
        let old_plan = old_pa.plan_blocks(IoKind::Read, &[pending]);
        let new_plan = a.pa.plan_blocks(IoKind::Read, &[pending]);
        assert_ne!(old_plan, new_plan, "the block's location changed");
        let r = a
            .submit(
                SimTime::from_secs(1.5),
                IoKind::Read,
                BlockRange::new(pending, 1),
            )
            .unwrap();
        // The archive read (foreground, non-PC) targets the old location.
        assert!(
            r.events
                .iter()
                .any(|e| e.device == old_plan[0].disk
                    && e.start_block == old_plan[0].range.start()),
            "the pending read resolves through the pre-reshape volume"
        );
        // A dirty write-back of the same block supersedes the pending move:
        // force it by writing (the write is absorbed by PC, so instead
        // check the supersession API directly through eviction pressure is
        // overkill — assert the bookkeeping path).
        let before = a.pending_archive_blocks();
        a.archive_restripe
            .as_mut()
            .unwrap()
            .supersede(&a.pa, pending);
        a.flush_archive_forfeits();
        assert_eq!(a.pending_archive_blocks(), before - 1);
        assert_eq!(a.migration_stats().archive_superseded_blocks, 1);
    }

    #[test]
    fn reads_of_pending_dirty_blocks_come_from_the_old_slots() {
        let mut a = paced(StrategyKind::Craid5, 1.0, BackgroundPriority::Sequential);
        // Dirty a block, then expand: its only valid copy is the old slot.
        a.submit(SimTime::ZERO, IoKind::Write, BlockRange::new(123, 1))
            .unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(a.migration.get(123).unwrap().dirty);
        let pc_limit = a.config.pc_blocks_per_hdd();
        let r = a
            .submit(
                SimTime::from_secs(1.5),
                IoKind::Read,
                BlockRange::new(123, 1),
            )
            .unwrap();
        assert_eq!(r.cache_hit_blocks, 1, "served from the preserved copy");
        assert!(
            r.events.iter().all(|e| e.start_block < pc_limit),
            "the read stays inside the (old) PC region"
        );
        assert!(
            a.migration.contains(123),
            "a read does not supersede a dirty pending move"
        );
        // A write lands at the new home and supersedes the move.
        a.submit(
            SimTime::from_secs(2.0),
            IoKind::Write,
            BlockRange::new(123, 1),
        )
        .unwrap();
        assert!(!a.migration.contains(123));
        assert_eq!(a.migration_stats().superseded_blocks, 1);
        assert!(
            a.monitor().mapping().lookup(123).unwrap().dirty,
            "the new-home copy is dirty"
        );
    }

    #[test]
    fn clean_pending_reads_supersede_and_refill_the_new_pc() {
        let mut a = paced(StrategyKind::Craid5, 1.0, BackgroundPriority::Sequential);
        a.submit(SimTime::ZERO, IoKind::Read, BlockRange::new(77, 1))
            .unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(!a.migration.get(77).unwrap().dirty);
        let r = a
            .submit(
                SimTime::from_secs(1.5),
                IoKind::Read,
                BlockRange::new(77, 1),
            )
            .unwrap();
        assert_eq!(r.cache_hit_blocks, 0, "the archive still has valid data");
        assert_eq!(r.admitted_blocks, 1, "and the block re-enters the new PC");
        assert!(!a.migration.contains(77), "the pending move is superseded");
    }

    #[test]
    fn hot_first_migration_moves_the_hottest_blocks_first() {
        for priority in [BackgroundPriority::Sequential, BackgroundPriority::HotFirst] {
            let mut a = paced(StrategyKind::Craid5Plus, 2.0, priority);
            // Block 9000 is touched three times, 500 once: 9000 is hotter.
            a.submit(SimTime::ZERO, IoKind::Read, BlockRange::new(9_000, 1))
                .unwrap();
            a.submit(
                SimTime::from_millis(1.0),
                IoKind::Read,
                BlockRange::new(9_000, 1),
            )
            .unwrap();
            a.submit(
                SimTime::from_millis(2.0),
                IoKind::Read,
                BlockRange::new(9_000, 1),
            )
            .unwrap();
            a.submit(
                SimTime::from_millis(3.0),
                IoKind::Read,
                BlockRange::new(500, 1),
            )
            .unwrap();
            a.expand(SimTime::from_secs(1.0), 4).unwrap();
            assert_eq!(a.migration_stats().effective_priority, Some(priority));
            // At 2 blocks/s, one block is due at t = 1.5s.
            a.pump_background(SimTime::from_secs(1.5));
            let moved_9000_first = !a.migration.contains(9_000);
            match priority {
                BackgroundPriority::HotFirst => {
                    assert!(moved_9000_first, "the hot block migrates first")
                }
                BackgroundPriority::Sequential => {
                    assert!(!moved_9000_first, "ascending order moves 500 first")
                }
            }
        }
    }

    #[test]
    fn expand_during_rebuild_fair_shares_when_paced() {
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000)
            .with_migration_rate(Some(1_000_000.0));
        config.rebuild_rate_blocks_per_sec = 1_000_000.0;
        let mut a = CraidArray::new(config).unwrap();
        warm(&mut a);
        a.fail_disk(SimTime::from_secs(1.0), 2).unwrap();
        a.repair_disk(SimTime::from_secs(2.0), 2).unwrap();
        // Mid-rebuild expansion is legal: both tasks are live on the same
        // fair-share engine and advance in the same pump.
        let report = a.expand(SimTime::from_secs(3.0), 4).unwrap();
        assert!(report.enqueued_blocks > 0);
        assert_eq!(a.disk_count(), 12);
        let migrated_before = a.migration_stats().migrated_blocks;
        let rebuilt_before = a.fault_stats().rebuild_write_blocks;
        a.pump_background(SimTime::from_secs(3.5));
        assert!(a.fault_stats().rebuild_write_blocks > rebuilt_before);
        assert!(a.migration_stats().migrated_blocks > migrated_before);
        let _ = drain(&mut a, 4.0);
        assert_eq!(a.fault_stats().rebuilds_completed, 1, "rebuild finished");
        assert_eq!(a.migration_stats().migrations_completed, 1, "and the move");
    }

    #[test]
    fn second_pc_migration_queues_and_both_generations_resolve() {
        // Aggregated archives have no reshape to serialize on, so a second
        // expand may start its own PC redistribution while the first is
        // still streaming: two preserved geometries are live at once.
        let mut a = paced(
            StrategyKind::Craid5Plus,
            2.0,
            BackgroundPriority::Sequential,
        );
        // A dirty block pins a generation-1 entry.
        a.submit(SimTime::ZERO, IoKind::Write, BlockRange::new(123, 1))
            .unwrap();
        a.submit(SimTime::ZERO, IoKind::Write, BlockRange::new(456, 1))
            .unwrap();
        let first = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(!first.deferred);
        assert_eq!(a.pending_migration_blocks(), 2);
        // Touch a different block so generation 2 has its own content.
        a.submit(
            SimTime::from_secs(1.2),
            IoKind::Write,
            BlockRange::new(789, 1),
        )
        .unwrap();
        let second = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert!(!second.deferred, "aggregated archives pipeline upgrades");
        assert_eq!(a.disk_count(), 16);
        assert_eq!(a.old_pcs.len(), 2, "two preserved geometries are live");
        let gens: Vec<TaskId> = a.migration.iter().map(|(_, h)| h.generation).collect();
        assert!(
            gens.iter().any(|&g| g != gens[0]),
            "entries from both generations are pending: {gens:?}"
        );
        // Dirty pending reads of both generations resolve correctly.
        for block in [123u64, 789] {
            let r = a
                .submit(
                    SimTime::from_secs(2.5),
                    IoKind::Read,
                    BlockRange::new(block, 1),
                )
                .unwrap();
            assert_eq!(r.cache_hit_blocks, 1, "block {block} served from its slot");
        }
        let _ = drain(&mut a, 3.0);
        let stats = a.migration_stats();
        assert_eq!(stats.migrations_started, 2);
        assert_eq!(stats.migrations_completed, 2);
        assert_eq!(stats.pending_blocks, 0);
        assert!(a.old_pcs.is_empty(), "both geometries were released");
    }

    #[test]
    fn ssd_variant_reports_sequential_effective_priority_for_its_restripe() {
        // Craid5Ssd starts no PC redistribution (the SSD cache survives);
        // its only paced stream is the archive-restripe cursor, which walks
        // sequentially no matter what was configured. The report must say
        // so instead of echoing the no-op hot-first knob.
        let mut a = paced(
            StrategyKind::Craid5Ssd,
            100_000.0,
            BackgroundPriority::HotFirst,
        );
        warm(&mut a);
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        assert_eq!(
            report.enqueued_blocks, 0,
            "the SSD cache is kept, not moved"
        );
        let stats = a.migration_stats();
        assert_eq!(stats.archive_restripes_started, 1);
        assert_eq!(
            stats.effective_priority,
            Some(BackgroundPriority::Sequential),
            "only the sequential reshape actually ran"
        );
        let _ = drain(&mut a, 11.0);
        assert_eq!(a.migration_stats().archive_restripes_completed, 1);
    }

    #[test]
    fn zero_move_activation_cannot_strand_later_deferred_expansions() {
        // A one-block dataset keeps its location across the width change,
        // so the reshape's move set is empty. The restripe task must be
        // pushed anyway: its completion is what activates the next queued
        // expansion — without it the deferred queue would hang the drain.
        let config =
            ArrayConfig::small_test(StrategyKind::Craid5, 1).with_migration_rate(Some(1_000.0));
        let mut a = CraidArray::new(config).unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let second = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert!(second.deferred);
        let third = a.expand(SimTime::from_secs(3.0), 4).unwrap();
        assert!(third.deferred);
        let _ = drain(&mut a, 4.0);
        assert_eq!(a.disk_count(), 20, "every queued expansion activated");
        assert_eq!(a.deferred_expansions(), 0);
        let stats = a.migration_stats();
        assert_eq!(stats.archive_restripes_started, 3);
        assert_eq!(stats.archive_restripes_completed, 3);
    }

    #[test]
    fn craid5_second_expand_defers_behind_the_archive_restripe() {
        let mut a = paced(
            StrategyKind::Craid5,
            50_000.0,
            BackgroundPriority::Sequential,
        );
        warm(&mut a);
        let first = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(!first.deferred);
        assert_eq!(a.disk_count(), 12);
        let second = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert!(second.deferred, "the reshape serializes ideal archives");
        assert_eq!(a.disk_count(), 12, "the deferred layout is not committed");
        assert_eq!(a.deferred_expansions(), 1);
        // 12 + 4 + 3 = 19 breaks the projected parity alignment.
        assert!(a.expand(SimTime::from_secs(2.5), 3).is_err());
        let t = drain(&mut a, 3.0);
        assert_eq!(a.disk_count(), 16, "the queued expansion activated");
        let stats = a.migration_stats();
        assert_eq!(stats.archive_restripes_started, 2);
        assert_eq!(stats.archive_restripes_completed, 2);
        assert_eq!(stats.migrations_completed, stats.migrations_started);
        assert!(a
            .submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }
}
