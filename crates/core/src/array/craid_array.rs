//! The CRAID array: cache partition + archive partition + control path.

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::{Layout, Raid5Layout, Raid5PlusLayout};
use craid_simkit::SimTime;

use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::{DeviceSet, DiskState};
use crate::error::CraidError;
use crate::fault::{self, RebuildEngine};
use crate::monitor::{IoMonitor, MonitorStats};
use crate::partition::{ArchiveLayout, CachePartition, Partition};
use crate::redirector;
use crate::report::FaultStats;

use super::{ExpansionReport, RequestReport, StorageArray};

/// A CRAID volume: the archive partition `PA` holds every block, the cache
/// partition `PC` holds copies of the hot set, and the monitor/redirector
/// pair keeps the two coherent (paper §3–4).
#[derive(Debug)]
pub struct CraidArray {
    config: ArrayConfig,
    devices: DeviceSet,
    monitor: IoMonitor,
    pc: CachePartition,
    pa: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
    rebuild: Option<RebuildEngine>,
    fault_stats: FaultStats,
}

impl CraidArray {
    /// Builds the CRAID array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or a layout
    /// cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        if !config.strategy.is_craid() {
            return Err(CraidError::InvalidConfig(
                "CraidArray requires a CRAID strategy".into(),
            ));
        }
        let devices = DeviceSet::from_config(&config);
        let pc = Self::build_pc(&config, config.disks)?;
        let pa = Self::build_pa(&config, config.disks, &config.expansion_sets)?;
        let monitor = IoMonitor::new(config.policy, pc.capacity());
        Ok(CraidArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            config,
            devices,
            monitor,
            pc,
            pa,
            rebuild: None,
            fault_stats: FaultStats::default(),
        })
    }

    fn build_pc(config: &ArrayConfig, disks: usize) -> Result<CachePartition, CraidError> {
        if config.strategy.uses_ssd_cache() {
            let layout = Raid5Layout::new(
                config.ssd_cache_devices,
                config.ssd_cache_devices,
                config.stripe_unit,
                config.pc_blocks_per_ssd(),
            )?;
            // SSDs are addressed after all mechanical disks.
            Ok(CachePartition::new(layout, disks, 0))
        } else {
            let layout = Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                config.pc_blocks_per_hdd(),
            )?;
            Ok(CachePartition::new(layout, 0, 0))
        }
    }

    fn build_pa(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let offset = config.pc_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, offset))
    }

    /// Writes back a set of dirty blocks (used by the upgrade invalidation).
    fn write_back(
        &mut self,
        now: SimTime,
        tasks: &[crate::monitor::EvictionTask],
        report: &mut ExpansionReport,
    ) {
        let slots: Vec<u64> = tasks.iter().map(|t| t.pc_slot).collect();
        let pa_blocks: Vec<u64> = tasks.iter().map(|t| t.pa_block).collect();
        for io in self.pc.plan_blocks(IoKind::Read, &slots) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        for io in self.pa.plan_blocks(IoKind::Write, &pa_blocks) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        report.writeback_blocks += tasks.len() as u64;
    }

    /// Physical blocks per mechanical disk that actually hold data or
    /// parity — the live region a rebuild must reconstruct: the PC rows
    /// plus the archive's share of the scattered dataset (parity overhead
    /// included via the physical-to-logical ratio). Rebuilding only live
    /// stripes is the data-aware counterpart of CRAID's upgrade story.
    fn live_blocks_per_hdd(&self) -> u64 {
        let pa_live = fault::live_blocks(
            self.pa.layout().blocks_per_disk(),
            self.pa.data_capacity(),
            self.config.dataset_blocks,
        );
        self.config.pc_blocks_per_hdd() + pa_live
    }

    /// Read access to the cache partition (examples and tests).
    pub fn cache_partition(&self) -> &CachePartition {
        &self.pc
    }

    /// Read access to the I/O monitor (examples and tests).
    pub fn monitor(&self) -> &IoMonitor {
        &self.monitor
    }
}

impl StorageArray for CraidArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.pa.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        self.pc.capacity()
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.pa.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.pa.data_capacity(),
            });
        }
        let mut plan =
            redirector::plan_request(&mut self.monitor, &mut self.pc, &self.pa, kind, range);

        let mut report = RequestReport {
            cache_hit_blocks: plan.cache_hit_blocks,
            admitted_blocks: plan.admitted_blocks,
            evictions: plan.evictions,
            dirty_writebacks: plan.dirty_writebacks,
            ..RequestReport::default()
        };
        // Interleave one catch-up batch of background rebuild traffic ahead
        // of the client I/O (it occupies devices but the client does not
        // wait on it).
        fault::step_rebuild(
            &mut self.rebuild,
            now,
            &mut self.devices,
            &mut report.events,
            &mut self.fault_stats,
        );
        if let Some((failed, state)) = self.devices.degraded_disk() {
            // Degraded mode: reads of the lost disk are reconstructed from
            // its parity-group peers — the PC and PA layouts group disks
            // differently, so the peer set depends on which per-disk region
            // the I/O falls in.
            let pc_limit = self.config.pc_blocks_per_hdd();
            let pc_layout = self.pc.layout();
            let pa_layout = self.pa.layout();
            let peers_for = |io: &crate::partition::PartitionIo| {
                if io.range.start() < pc_limit {
                    pc_layout.reconstruction_peers(io.disk)
                } else {
                    pa_layout.reconstruction_peers(io.disk)
                }
            };
            let accepts_writes = state == DiskState::Rebuilding;
            plan.foreground = fault::degrade_plan(
                plan.foreground,
                failed,
                accepts_writes,
                peers_for,
                &mut self.fault_stats,
            );
            plan.background = fault::degrade_plan(
                plan.background,
                failed,
                accepts_writes,
                peers_for,
                &mut self.fault_stats,
            );
        }
        let mut finish = now;
        for io in plan.foreground {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(ev.finished);
            report.events.push(ev);
        }
        for io in plan.background {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            report.events.push(ev);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        // The upgrade is transactional: every precondition is checked and
        // every new layout is built *before* the cache partition is
        // invalidated or any device/geometry state changes, so a rejected
        // expansion leaves the array exactly as it was.
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        if let Some((disk, state)) = self.devices.degraded_disk() {
            // A failed disk has no data to redistribute; a rebuilding one
            // has an engine pacing itself against the pre-expansion
            // geometry. Both must resolve before the geometry changes.
            return Err(CraidError::InvalidExpansion(format!(
                "disk {disk} is {state:?}; wait until the array is healthy before expanding"
            )));
        }
        let new_disks = self.disks + added_disks;
        let mut new_sets = self.expansion_sets.clone();
        if self.config.strategy.archive_is_aggregated() {
            if added_disks < 2 {
                return Err(CraidError::InvalidExpansion(
                    "a new RAID-5 set needs at least 2 disks".into(),
                ));
            }
            new_sets.push(added_disks);
        } else if !new_disks.is_multiple_of(self.config.parity_group) {
            return Err(CraidError::InvalidExpansion(format!(
                "the ideal RAID-5 archive needs the disk count ({new_disks}) to stay a multiple of the parity group ({})",
                self.config.parity_group
            )));
        }
        let new_pa = Self::build_pa(&self.config, new_disks, &new_sets)?;
        let spreads_pc_over_hdds = !self.config.strategy.uses_ssd_cache();
        let new_pc_layout = if spreads_pc_over_hdds {
            // PC must keep using every disk: it is rebuilt over the new set
            // of spindles and starts refilling immediately. When the count
            // stops dividing evenly, parity groups stay aligned by treating
            // the whole array as one group.
            let group = if new_disks.is_multiple_of(self.config.parity_group) {
                self.config.parity_group
            } else {
                new_disks
            };
            Some(Raid5Layout::new(
                new_disks,
                group,
                self.config.stripe_unit,
                self.config.pc_blocks_per_hdd(),
            )?)
        } else {
            None
        };

        // Validation complete — commit the upgrade.
        let mut report = ExpansionReport {
            added_disks,
            ..ExpansionReport::default()
        };
        if let Some(pc_layout) = new_pc_layout {
            // Migration for CRAID is bounded by what currently lives in PC:
            // the dirty copies are written back now, the rest is simply
            // invalidated and re-copied on demand as the working set is
            // touched again.
            report.migrated_blocks = self.monitor.cached_blocks() as u64;
            let tasks = self.monitor.invalidate_all(&mut self.pc);
            self.write_back(now, &tasks, &mut report);
            self.devices.add_hdds(added_disks);
            self.pc.rebuild(pc_layout, 0, 0);
            self.monitor.resize(self.pc.capacity());
        } else {
            // A dedicated-SSD cache tier keeps its contents when mechanical
            // disks are added; only the SSDs' device indices shift, because
            // the new spindles are spliced in front of them.
            self.devices.add_hdds(added_disks);
            self.pc.rebind_first_device(new_disks);
        }
        self.pa = new_pa;
        self.expansion_sets = new_sets;
        self.disks = new_disks;
        Ok(report)
    }

    fn fail_disk(&mut self, _now: SimTime, disk: usize) -> Result<(), CraidError> {
        self.devices.fail_disk(disk)?;
        self.fault_stats.disk_failures += 1;
        Ok(())
    }

    fn repair_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError> {
        // The rebuild streams the whole device image; its peers are the
        // archive layout's parity group (the PC rows of the disk are
        // reconstructed from the same spindles on the paper's shapes).
        let peers = self.pa.layout().reconstruction_peers(disk);
        let live_blocks = self.live_blocks_per_hdd();
        fault::start_rebuild(
            &mut self.rebuild,
            &mut self.devices,
            now,
            disk,
            peers,
            live_blocks,
            self.config.rebuild_rate_blocks_per_sec,
            &mut self.fault_stats,
        )
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    fn switch_policy(
        &mut self,
        _now: SimTime,
        policy: craid_cache::PolicyKind,
    ) -> Result<(), CraidError> {
        self.monitor.switch_policy(policy);
        self.config.policy = policy;
        Ok(())
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        Some(*self.monitor.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_simkit::SimDuration;

    fn array(strategy: StrategyKind) -> CraidArray {
        CraidArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    #[test]
    fn cold_read_goes_to_archive_then_caches() {
        let mut a = array(StrategyKind::Craid5);
        let r1 = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(500, 4))
            .unwrap();
        assert_eq!(r1.cache_hit_blocks, 0);
        assert_eq!(r1.admitted_blocks, 4);
        // Second read of the same blocks hits the cache partition.
        let r2 = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(500, 4),
            )
            .unwrap();
        assert_eq!(r2.cache_hit_blocks, 4);
        assert_eq!(r2.admitted_blocks, 0);
        let stats = a.monitor_stats().unwrap();
        assert_eq!(stats.read_hits, 4);
        assert_eq!(stats.read_accesses, 8);
    }

    #[test]
    fn repeated_hot_reads_get_faster_than_cold_reads() {
        let mut a = array(StrategyKind::Craid5);
        let cold = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(2_000, 4))
            .unwrap()
            .response;
        // Touch it a few times so it is firmly resident and the disks are idle.
        let mut warm = SimDuration::ZERO;
        for i in 1..=3 {
            warm = a
                .submit(
                    SimTime::from_secs(i as f64 * 10.0),
                    IoKind::Read,
                    BlockRange::new(2_000, 4),
                )
                .unwrap()
                .response;
        }
        assert!(
            warm <= cold,
            "warm read ({warm}) should not be slower than the cold read ({cold})"
        );
    }

    #[test]
    fn writes_are_absorbed_by_the_cache_partition() {
        let mut a = array(StrategyKind::Craid5);
        let pc_limit = a.config.pc_blocks_per_hdd();
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(9_000, 2))
            .unwrap();
        assert_eq!(r.admitted_blocks, 2);
        assert!(
            r.events.iter().all(|e| e.start_block < pc_limit),
            "all I/O for an absorbed write stays inside the PC region"
        );
    }

    #[test]
    fn ssd_variant_sends_cache_traffic_to_ssds() {
        let mut a = array(StrategyKind::Craid5Ssd);
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(
            r.events.iter().all(|e| e.device >= 8),
            "writes are absorbed by the dedicated SSDs"
        );
        // A cold read touches the archive (HDDs) and copies to the SSDs.
        let r = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(5_000, 2),
            )
            .unwrap();
        assert!(r.events.iter().any(|e| e.device < 8));
        assert!(r.events.iter().any(|e| e.device >= 8));
    }

    #[test]
    fn expansion_invalidates_pc_and_grows_it() {
        let mut a = array(StrategyKind::Craid5Plus);
        // Warm the cache with some dirty blocks.
        for b in 0..40u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 8, 4),
            )
            .unwrap();
        }
        let cached_before = a.monitor().cached_blocks();
        assert!(cached_before > 0);
        let pc_before = a.pc_capacity_blocks();
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        assert_eq!(report.added_disks, 4);
        assert_eq!(report.migrated_blocks, cached_before as u64);
        assert!(report.writeback_blocks > 0, "dirty blocks are written back");
        assert!(!report.events.is_empty());
        assert_eq!(a.disk_count(), 12);
        assert!(a.pc_capacity_blocks() > pc_before, "PC now spans 12 disks");
        assert_eq!(a.monitor().cached_blocks(), 0, "PC starts cold again");
        // The array keeps serving and refilling after the upgrade.
        let r = a
            .submit(
                SimTime::from_secs(20.0),
                IoKind::Read,
                BlockRange::new(0, 4),
            )
            .unwrap();
        assert_eq!(r.admitted_blocks, 4);
    }

    #[test]
    fn expansion_migration_is_bounded_by_pc_residency() {
        let mut a = array(StrategyKind::Craid5Plus);
        for b in 0..100u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Read,
                BlockRange::new(b * 16, 2),
            )
            .unwrap();
        }
        let report = a.expand(SimTime::from_secs(5.0), 4).unwrap();
        assert!(report.migrated_blocks <= a.pc_capacity_blocks().max(report.migrated_blocks));
        assert!(
            report.migrated_blocks < 10_000 / 2,
            "CRAID migrates far less than the dataset"
        );
    }

    #[test]
    fn ssd_cached_expansion_keeps_cache_intact() {
        let mut a = array(StrategyKind::Craid5PlusSsd);
        for b in 0..20u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 4, 2),
            )
            .unwrap();
        }
        let cached = a.monitor().cached_blocks();
        let report = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(report.writeback_blocks, 0);
        assert_eq!(
            a.monitor().cached_blocks(),
            cached,
            "the SSD cache survives"
        );
    }

    #[test]
    fn out_of_range_and_invalid_expansion_are_rejected() {
        let mut a = array(StrategyKind::Craid5);
        let cap = a.capacity_blocks();
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .is_err());
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        let mut plus = array(StrategyKind::Craid5Plus);
        assert!(plus.expand(SimTime::ZERO, 1).is_err());
    }

    /// Warms an array with a deterministic mixed workload.
    fn warm(a: &mut CraidArray) {
        for b in 0..60u64 {
            let kind = if b % 3 == 0 {
                IoKind::Write
            } else {
                IoKind::Read
            };
            a.submit(
                SimTime::from_millis(b as f64 * 5.0),
                kind,
                BlockRange::new(b * 16 % 9_000, 4),
            )
            .unwrap();
        }
    }

    #[test]
    fn rejected_expansion_leaves_the_array_bit_identical() {
        // Two identically warmed arrays; one suffers a rejected expansion.
        let mut touched = array(StrategyKind::Craid5);
        let mut pristine = array(StrategyKind::Craid5);
        warm(&mut touched);
        warm(&mut pristine);

        // 8 + 3 = 11 is not a multiple of the parity group (4): rejected.
        let err = touched.expand(SimTime::from_secs(1.0), 3).unwrap_err();
        assert!(matches!(err, CraidError::InvalidExpansion(_)));

        // Every piece of reported state matches the untouched twin.
        assert_eq!(touched.disk_count(), pristine.disk_count());
        assert_eq!(touched.device_count(), pristine.device_count());
        assert_eq!(touched.capacity_blocks(), pristine.capacity_blocks());
        assert_eq!(touched.pc_capacity_blocks(), pristine.pc_capacity_blocks());
        assert_eq!(
            touched.monitor().cached_blocks(),
            pristine.monitor().cached_blocks(),
            "the cache partition was not invalidated"
        );
        assert_eq!(touched.monitor_stats(), pristine.monitor_stats());
        assert_eq!(touched.device_stats(), pristine.device_stats());

        // Subsequent traffic behaves byte-identically on both arrays.
        for b in [100u64, 3_000, 8_000] {
            let now = SimTime::from_secs(2.0 + b as f64);
            let got = touched
                .submit(now, IoKind::Read, BlockRange::new(b, 4))
                .unwrap();
            let want = pristine
                .submit(now, IoKind::Read, BlockRange::new(b, 4))
                .unwrap();
            assert_eq!(got, want, "block {b} diverged after the failed expand");
        }
    }

    #[test]
    fn ssd_expansion_keeps_cache_traffic_on_the_shifted_ssds() {
        let mut a = array(StrategyKind::Craid5PlusSsd);
        a.submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 2))
            .unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        // The SSDs moved from 8..11 to 12..15; the surviving cached copy
        // must be read from there, not from the freshly added spindles.
        let r = a
            .submit(SimTime::from_secs(2.0), IoKind::Read, BlockRange::new(0, 2))
            .unwrap();
        assert_eq!(r.cache_hit_blocks, 2);
        assert!(
            r.events.iter().all(|e| e.device >= 12),
            "cache hits must target the shifted SSDs, got {:?}",
            r.events.iter().map(|e| e.device).collect::<Vec<_>>()
        );
    }

    #[test]
    fn degraded_reads_reconstruct_from_surviving_group_members() {
        use craid_raid::IoPurpose;
        let mut a = array(StrategyKind::Craid5);
        // Find a block whose archive location is disk 1 and make it hot is
        // unnecessary — a cold read of a wide range will touch disk 1.
        a.fail_disk(SimTime::ZERO, 1).unwrap();
        let requests_before: Vec<u64> = a.device_stats().iter().map(|s| s.requests).collect();
        let mut saw_reconstruction = false;
        for b in 0..40u64 {
            let r = a
                .submit(
                    SimTime::from_millis(b as f64 * 10.0),
                    IoKind::Read,
                    BlockRange::new(b * 64, 8),
                )
                .unwrap();
            assert!(
                r.events.iter().all(|e| e.device != 1),
                "no I/O may reach the failed disk"
            );
            saw_reconstruction |= r
                .events
                .iter()
                .any(|e| e.purpose == IoPurpose::ReconstructRead);
        }
        assert!(saw_reconstruction, "some read must have needed disk 1");
        let stats = a.fault_stats();
        assert!(stats.degraded_reads > 0);
        assert_eq!(stats.disk_failures, 1);
        // The fan-out is visible in the surviving members' load stats:
        // disks 0, 2, 3 (disk 1's parity group) picked up extra requests.
        let requests_after: Vec<u64> = a.device_stats().iter().map(|s| s.requests).collect();
        assert_eq!(requests_after[1], requests_before[1]);
        for peer in [0usize, 2, 3] {
            assert!(requests_after[peer] > requests_before[peer]);
        }
    }

    #[test]
    fn repair_streams_the_rebuild_and_heals_the_array() {
        use craid_raid::IoPurpose;
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5, 10_000);
        config.rebuild_rate_blocks_per_sec = 1_000_000.0;
        let mut a = CraidArray::new(config).unwrap();
        a.fail_disk(SimTime::ZERO, 2).unwrap();
        // Expanding a degraded array is refused.
        assert!(matches!(
            a.expand(SimTime::from_secs(0.5), 4),
            Err(CraidError::InvalidExpansion(_))
        ));
        a.repair_disk(SimTime::from_secs(1.0), 2).unwrap();
        // Client traffic interleaves with the rebuild stream until the
        // spare holds the full image.
        let mut t = 2.0;
        while a.fault_stats().rebuilds_completed == 0 && t < 100.0 {
            let r = a
                .submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
                .unwrap();
            if a.fault_stats().rebuild_write_blocks > 0 && t == 2.0 {
                assert!(r
                    .events
                    .iter()
                    .any(|e| e.purpose == IoPurpose::RebuildWrite && e.device == 2));
            }
            t += 1.0;
        }
        let stats = a.fault_stats();
        assert_eq!(stats.rebuilds_completed, 1);
        assert!(stats.rebuild_secs > 0.0);
        assert!(stats.mttr_secs() > 0.0);
        assert_eq!(stats.rebuild_write_blocks, a.live_blocks_per_hdd());
        assert!(
            stats.rebuild_write_blocks < 2 * 1024 * 1024 / 10,
            "a data-aware rebuild reconstructs only live stripes, not the \
             whole 2M-block device"
        );
        // Healed: expansion works again and reads stop fanning out.
        let degraded_before = a.fault_stats().degraded_reads;
        a.submit(
            SimTime::from_secs(t + 1.0),
            IoKind::Read,
            BlockRange::new(5_000, 4),
        )
        .unwrap();
        assert_eq!(a.fault_stats().degraded_reads, degraded_before);
        assert!(a.expand(SimTime::from_secs(t + 2.0), 4).is_ok());
    }

    #[test]
    fn eviction_pressure_produces_writebacks() {
        let mut a = array(StrategyKind::Craid5);
        let pc = a.pc_capacity_blocks();
        // Write twice the PC capacity of distinct blocks: must evict dirty
        // victims and pay archive write-backs.
        let mut dirty_writebacks = 0;
        for i in 0..(2 * pc) {
            let r = a
                .submit(
                    SimTime::from_millis(i as f64),
                    IoKind::Write,
                    BlockRange::new((i * 7) % 9_000, 1),
                )
                .unwrap();
            dirty_writebacks += r.dirty_writebacks;
        }
        assert!(dirty_writebacks > 0);
        let stats = a.monitor_stats().unwrap();
        assert!(stats.dirty_evictions > 0);
        assert!(stats.write_eviction_ratio() > 0.0);
    }
}
