//! The CRAID array: cache partition + archive partition + control path.

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::{Raid5Layout, Raid5PlusLayout};
use craid_simkit::SimTime;

use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::DeviceSet;
use crate::error::CraidError;
use crate::monitor::{IoMonitor, MonitorStats};
use crate::partition::{ArchiveLayout, CachePartition, Partition};
use crate::redirector;

use super::{ExpansionReport, RequestReport, StorageArray};

/// A CRAID volume: the archive partition `PA` holds every block, the cache
/// partition `PC` holds copies of the hot set, and the monitor/redirector
/// pair keeps the two coherent (paper §3–4).
#[derive(Debug)]
pub struct CraidArray {
    config: ArrayConfig,
    devices: DeviceSet,
    monitor: IoMonitor,
    pc: CachePartition,
    pa: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
}

impl CraidArray {
    /// Builds the CRAID array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or a layout
    /// cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        if !config.strategy.is_craid() {
            return Err(CraidError::InvalidConfig(
                "CraidArray requires a CRAID strategy".into(),
            ));
        }
        let devices = DeviceSet::from_config(&config);
        let pc = Self::build_pc(&config, config.disks)?;
        let pa = Self::build_pa(&config, config.disks, &config.expansion_sets)?;
        let monitor = IoMonitor::new(config.policy, pc.capacity());
        Ok(CraidArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            config,
            devices,
            monitor,
            pc,
            pa,
        })
    }

    fn build_pc(config: &ArrayConfig, disks: usize) -> Result<CachePartition, CraidError> {
        if config.strategy.uses_ssd_cache() {
            let layout = Raid5Layout::new(
                config.ssd_cache_devices,
                config.ssd_cache_devices,
                config.stripe_unit,
                config.pc_blocks_per_ssd(),
            )?;
            // SSDs are addressed after all mechanical disks.
            Ok(CachePartition::new(layout, disks, 0))
        } else {
            let layout = Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                config.pc_blocks_per_hdd(),
            )?;
            Ok(CachePartition::new(layout, 0, 0))
        }
    }

    fn build_pa(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let offset = config.pc_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, offset))
    }

    /// Writes back a set of dirty blocks (used by the upgrade invalidation).
    fn write_back(
        &mut self,
        now: SimTime,
        tasks: &[crate::monitor::EvictionTask],
        report: &mut ExpansionReport,
    ) {
        let slots: Vec<u64> = tasks.iter().map(|t| t.pc_slot).collect();
        let pa_blocks: Vec<u64> = tasks.iter().map(|t| t.pa_block).collect();
        for io in self.pc.plan_blocks(IoKind::Read, &slots) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        for io in self.pa.plan_blocks(IoKind::Write, &pa_blocks) {
            report.events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        report.writeback_blocks += tasks.len() as u64;
    }

    /// Read access to the cache partition (examples and tests).
    pub fn cache_partition(&self) -> &CachePartition {
        &self.pc
    }

    /// Read access to the I/O monitor (examples and tests).
    pub fn monitor(&self) -> &IoMonitor {
        &self.monitor
    }
}

impl StorageArray for CraidArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.pa.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        self.pc.capacity()
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.pa.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.pa.data_capacity(),
            });
        }
        let plan = redirector::plan_request(&mut self.monitor, &mut self.pc, &self.pa, kind, range);

        let mut report = RequestReport {
            cache_hit_blocks: plan.cache_hit_blocks,
            admitted_blocks: plan.admitted_blocks,
            evictions: plan.evictions,
            dirty_writebacks: plan.dirty_writebacks,
            ..RequestReport::default()
        };
        let mut finish = now;
        for io in plan.foreground {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(ev.finished);
            report.events.push(ev);
        }
        for io in plan.background {
            let ev = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            report.events.push(ev);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        let new_disks = self.disks + added_disks;
        let mut report = ExpansionReport {
            added_disks,
            ..ExpansionReport::default()
        };

        // Migration for CRAID is bounded by what currently lives in PC: the
        // dirty copies are written back now, the rest is simply invalidated
        // and re-copied on demand as the working set is touched again.
        report.migrated_blocks = self.monitor.cached_blocks() as u64;

        let spreads_pc_over_hdds = !self.config.strategy.uses_ssd_cache();
        if spreads_pc_over_hdds {
            let tasks = self.monitor.invalidate_all(&mut self.pc);
            self.write_back(now, &tasks, &mut report);
        } else {
            // A dedicated-SSD cache tier does not change when mechanical
            // disks are added; nothing to invalidate.
            report.migrated_blocks = 0;
        }

        self.devices.add_hdds(added_disks);
        self.disks = new_disks;

        // Rebuild the partitions over the enlarged array.
        if self.config.strategy.archive_is_aggregated() {
            if added_disks < 2 {
                return Err(CraidError::InvalidExpansion(
                    "a new RAID-5 set needs at least 2 disks".into(),
                ));
            }
            self.expansion_sets.push(added_disks);
        } else if !new_disks.is_multiple_of(self.config.parity_group) {
            return Err(CraidError::InvalidExpansion(format!(
                "the ideal RAID-5 archive needs the disk count ({new_disks}) to stay a multiple of the parity group ({})",
                self.config.parity_group
            )));
        }
        self.pa = Self::build_pa(&self.config, new_disks, &self.expansion_sets)?;
        if spreads_pc_over_hdds {
            // PC must keep using every disk: it is rebuilt over the new set
            // of spindles and starts refilling immediately.
            let pc_layout = if new_disks.is_multiple_of(self.config.parity_group) {
                Raid5Layout::new(
                    new_disks,
                    self.config.parity_group,
                    self.config.stripe_unit,
                    self.config.pc_blocks_per_hdd(),
                )?
            } else {
                // Keep parity groups aligned by treating the whole array as
                // one group when the count does not divide evenly.
                Raid5Layout::new(
                    new_disks,
                    new_disks,
                    self.config.stripe_unit,
                    self.config.pc_blocks_per_hdd(),
                )?
            };
            self.pc.rebuild(pc_layout, 0, 0);
            self.monitor.resize(self.pc.capacity());
        }
        Ok(report)
    }

    fn switch_policy(
        &mut self,
        _now: SimTime,
        policy: craid_cache::PolicyKind,
    ) -> Result<(), CraidError> {
        self.monitor.switch_policy(policy);
        self.config.policy = policy;
        Ok(())
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        Some(*self.monitor.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_simkit::SimDuration;

    fn array(strategy: StrategyKind) -> CraidArray {
        CraidArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    #[test]
    fn cold_read_goes_to_archive_then_caches() {
        let mut a = array(StrategyKind::Craid5);
        let r1 = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(500, 4))
            .unwrap();
        assert_eq!(r1.cache_hit_blocks, 0);
        assert_eq!(r1.admitted_blocks, 4);
        // Second read of the same blocks hits the cache partition.
        let r2 = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(500, 4),
            )
            .unwrap();
        assert_eq!(r2.cache_hit_blocks, 4);
        assert_eq!(r2.admitted_blocks, 0);
        let stats = a.monitor_stats().unwrap();
        assert_eq!(stats.read_hits, 4);
        assert_eq!(stats.read_accesses, 8);
    }

    #[test]
    fn repeated_hot_reads_get_faster_than_cold_reads() {
        let mut a = array(StrategyKind::Craid5);
        let cold = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(2_000, 4))
            .unwrap()
            .response;
        // Touch it a few times so it is firmly resident and the disks are idle.
        let mut warm = SimDuration::ZERO;
        for i in 1..=3 {
            warm = a
                .submit(
                    SimTime::from_secs(i as f64 * 10.0),
                    IoKind::Read,
                    BlockRange::new(2_000, 4),
                )
                .unwrap()
                .response;
        }
        assert!(
            warm <= cold,
            "warm read ({warm}) should not be slower than the cold read ({cold})"
        );
    }

    #[test]
    fn writes_are_absorbed_by_the_cache_partition() {
        let mut a = array(StrategyKind::Craid5);
        let pc_limit = a.config.pc_blocks_per_hdd();
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(9_000, 2))
            .unwrap();
        assert_eq!(r.admitted_blocks, 2);
        assert!(
            r.events.iter().all(|e| e.start_block < pc_limit),
            "all I/O for an absorbed write stays inside the PC region"
        );
    }

    #[test]
    fn ssd_variant_sends_cache_traffic_to_ssds() {
        let mut a = array(StrategyKind::Craid5Ssd);
        let r = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(
            r.events.iter().all(|e| e.device >= 8),
            "writes are absorbed by the dedicated SSDs"
        );
        // A cold read touches the archive (HDDs) and copies to the SSDs.
        let r = a
            .submit(
                SimTime::from_secs(1.0),
                IoKind::Read,
                BlockRange::new(5_000, 2),
            )
            .unwrap();
        assert!(r.events.iter().any(|e| e.device < 8));
        assert!(r.events.iter().any(|e| e.device >= 8));
    }

    #[test]
    fn expansion_invalidates_pc_and_grows_it() {
        let mut a = array(StrategyKind::Craid5Plus);
        // Warm the cache with some dirty blocks.
        for b in 0..40u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 8, 4),
            )
            .unwrap();
        }
        let cached_before = a.monitor().cached_blocks();
        assert!(cached_before > 0);
        let pc_before = a.pc_capacity_blocks();
        let report = a.expand(SimTime::from_secs(10.0), 4).unwrap();
        assert_eq!(report.added_disks, 4);
        assert_eq!(report.migrated_blocks, cached_before as u64);
        assert!(report.writeback_blocks > 0, "dirty blocks are written back");
        assert!(!report.events.is_empty());
        assert_eq!(a.disk_count(), 12);
        assert!(a.pc_capacity_blocks() > pc_before, "PC now spans 12 disks");
        assert_eq!(a.monitor().cached_blocks(), 0, "PC starts cold again");
        // The array keeps serving and refilling after the upgrade.
        let r = a
            .submit(
                SimTime::from_secs(20.0),
                IoKind::Read,
                BlockRange::new(0, 4),
            )
            .unwrap();
        assert_eq!(r.admitted_blocks, 4);
    }

    #[test]
    fn expansion_migration_is_bounded_by_pc_residency() {
        let mut a = array(StrategyKind::Craid5Plus);
        for b in 0..100u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Read,
                BlockRange::new(b * 16, 2),
            )
            .unwrap();
        }
        let report = a.expand(SimTime::from_secs(5.0), 4).unwrap();
        assert!(report.migrated_blocks <= a.pc_capacity_blocks().max(report.migrated_blocks));
        assert!(
            report.migrated_blocks < 10_000 / 2,
            "CRAID migrates far less than the dataset"
        );
    }

    #[test]
    fn ssd_cached_expansion_keeps_cache_intact() {
        let mut a = array(StrategyKind::Craid5PlusSsd);
        for b in 0..20u64 {
            a.submit(
                SimTime::from_millis(b as f64),
                IoKind::Write,
                BlockRange::new(b * 4, 2),
            )
            .unwrap();
        }
        let cached = a.monitor().cached_blocks();
        let report = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(report.writeback_blocks, 0);
        assert_eq!(
            a.monitor().cached_blocks(),
            cached,
            "the SSD cache survives"
        );
    }

    #[test]
    fn out_of_range_and_invalid_expansion_are_rejected() {
        let mut a = array(StrategyKind::Craid5);
        let cap = a.capacity_blocks();
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .is_err());
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        let mut plus = array(StrategyKind::Craid5Plus);
        assert!(plus.expand(SimTime::ZERO, 1).is_err());
    }

    #[test]
    fn eviction_pressure_produces_writebacks() {
        let mut a = array(StrategyKind::Craid5);
        let pc = a.pc_capacity_blocks();
        // Write twice the PC capacity of distinct blocks: must evict dirty
        // victims and pay archive write-backs.
        let mut dirty_writebacks = 0;
        for i in 0..(2 * pc) {
            let r = a
                .submit(
                    SimTime::from_millis(i as f64),
                    IoKind::Write,
                    BlockRange::new((i * 7) % 9_000, 1),
                )
                .unwrap();
            dirty_writebacks += r.dirty_writebacks;
        }
        assert!(dirty_writebacks > 0);
        let stats = a.monitor_stats().unwrap();
        assert!(stats.dirty_evictions > 0);
        assert!(stats.write_eviction_ratio() > 0.0);
    }
}
