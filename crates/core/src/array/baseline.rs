//! The baseline arrays: ideal RAID-5 and aggregated RAID-5+.

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::{Layout, Raid5Layout, Raid5PlusLayout};
use craid_simkit::{SimDuration, SimTime};

use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::DeviceSet;
use crate::error::CraidError;
use crate::monitor::MonitorStats;
use crate::partition::{ArchiveLayout, Partition};

use super::{ExpansionReport, RequestReport, StorageArray};

/// A conventional array without a cache partition: either an ideally
/// restriped RAID-5 (`RAID-5`) or the aggregation of independent RAID-5 sets
/// left behind by upgrades (`RAID-5+`).
#[derive(Debug)]
pub struct BaselineArray {
    config: ArrayConfig,
    devices: DeviceSet,
    volume: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
}

impl BaselineArray {
    /// Builds the baseline array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or the
    /// layout cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        let devices = DeviceSet::from_config(&config);
        let volume = Self::build_volume(&config, config.disks, &config.expansion_sets)?;
        Ok(BaselineArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            config,
            devices,
            volume,
        })
    }

    fn build_volume(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, 0))
    }

    /// Fraction of logical blocks whose physical location changes between
    /// two volume layouts, estimated by sampling the used address range.
    fn restripe_fraction(
        old: &Partition<ArchiveLayout>,
        new: &Partition<ArchiveLayout>,
        used: u64,
    ) -> f64 {
        let probe = used.clamp(1, 8_192);
        let step = (used / probe).max(1);
        let mut moved = 0u64;
        let mut sampled = 0u64;
        let mut block = 0u64;
        while block < used && sampled < probe {
            if old.layout().locate(block) != new.layout().locate(block) {
                moved += 1;
            }
            sampled += 1;
            block += step;
        }
        if sampled == 0 {
            0.0
        } else {
            moved as f64 / sampled as f64
        }
    }
}

impl StorageArray for BaselineArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.volume.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        0
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.volume.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.volume.data_capacity(),
            });
        }
        let blocks: Vec<u64> = range.blocks().collect();
        let plan = self.volume.plan_blocks(kind, &blocks);
        let mut report = RequestReport::default();
        let mut finish = now;
        for io in plan {
            let event = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(event.finished);
            report.events.push(event);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, _now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        let new_disks = self.disks + added_disks;
        let migrated = match self.config.strategy {
            StrategyKind::Raid5 => {
                // An ideal RAID-5 stays ideal only by restriping: count how
                // much of the used dataset has to move.
                if !new_disks.is_multiple_of(self.config.parity_group) {
                    return Err(CraidError::InvalidExpansion(format!(
                        "RAID-5 restripe needs the disk count ({new_disks}) to stay a multiple of the parity group ({})",
                        self.config.parity_group
                    )));
                }
                let new_volume = Self::build_volume(&self.config, new_disks, &self.expansion_sets)?;
                let used = self.config.dataset_blocks;
                let fraction = Self::restripe_fraction(&self.volume, &new_volume, used);
                self.volume = new_volume;
                (fraction * used as f64).round() as u64
            }
            StrategyKind::Raid5Plus => {
                // Aggregation: the new disks form a fresh RAID-5 set, nothing
                // moves (and the load stays unbalanced — that is the point).
                if added_disks < 2 {
                    return Err(CraidError::InvalidExpansion(
                        "a new RAID-5 set needs at least 2 disks".into(),
                    ));
                }
                self.expansion_sets.push(added_disks);
                self.volume = Self::build_volume(&self.config, new_disks, &self.expansion_sets)?;
                0
            }
            _ => unreachable!("baseline arrays only implement the two baseline strategies"),
        };
        self.devices.add_hdds(added_disks);
        self.disks = new_disks;
        Ok(ExpansionReport {
            added_disks,
            migrated_blocks: migrated,
            writeback_blocks: 0,
            events: Vec::new(),
        })
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        None
    }
}

impl BaselineArray {
    /// Mean response time observed so far across all devices — a cheap
    /// smoke-test accessor used by examples.
    pub fn mean_device_busy(&self) -> SimDuration {
        let stats = self.devices.load_stats();
        let total: SimDuration = stats.iter().map(|s| s.busy).sum();
        total / stats.len().max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::IoPurpose;

    fn array(strategy: StrategyKind) -> BaselineArray {
        BaselineArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    #[test]
    fn read_touches_only_data_disks() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.response > SimDuration::ZERO);
        assert!(report.events.iter().all(|e| e.kind == IoKind::Read));
        assert_eq!(report.cache_hit_blocks, 0);
    }

    #[test]
    fn write_pays_parity_maintenance() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(report
            .events
            .iter()
            .any(|e| e.purpose == IoPurpose::ParityWrite));
        let read_resp = array(StrategyKind::Raid5)
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(100, 2))
            .unwrap()
            .response;
        assert!(
            report.response > read_resp,
            "RMW writes cost more than reads"
        );
    }

    #[test]
    fn raid5plus_spreads_sets_over_disjoint_disks() {
        let mut a = array(StrategyKind::Raid5Plus);
        // The first set owns disks 0..4: a low address only touches those.
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.events.iter().all(|e| e.device < 4));
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let mut a = array(StrategyKind::Raid5);
        let cap = a.capacity_blocks();
        let err = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .unwrap_err();
        assert!(matches!(err, CraidError::OutOfRange { .. }));
    }

    #[test]
    fn raid5_expansion_migrates_most_of_the_dataset() {
        let mut a = array(StrategyKind::Raid5);
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(a.disk_count(), 12);
        assert!(
            report.migrated_blocks as f64 > 0.5 * 10_000.0,
            "an ideal restripe moves most used blocks, got {}",
            report.migrated_blocks
        );
        // The array still serves requests afterwards.
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn raid5plus_expansion_migrates_nothing() {
        let mut a = array(StrategyKind::Raid5Plus);
        let cap_before = a.capacity_blocks();
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(a.disk_count(), 12);
        assert!(a.capacity_blocks() > cap_before);
    }

    #[test]
    fn invalid_expansions_are_rejected() {
        let mut a = array(StrategyKind::Raid5Plus);
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        assert!(
            a.expand(SimTime::ZERO, 1).is_err(),
            "a one-disk RAID-5 set is not valid"
        );
        let mut a = array(StrategyKind::Raid5);
        assert!(
            a.expand(SimTime::ZERO, 3).is_err(),
            "restripe must keep the parity group alignment"
        );
    }

    #[test]
    fn device_stats_accumulate() {
        let mut a = array(StrategyKind::Raid5);
        for i in 0..20u64 {
            a.submit(
                SimTime::from_millis(i as f64 * 10.0),
                IoKind::Read,
                BlockRange::new(i * 37 % 9_000, 4),
            )
            .unwrap();
        }
        let stats = a.device_stats();
        assert_eq!(stats.len(), 8);
        let total: u64 = stats.iter().map(|s| s.requests).sum();
        assert!(total >= 20);
        assert!(a.mean_device_busy() > SimDuration::ZERO);
        assert!(a.monitor_stats().is_none());
    }
}
