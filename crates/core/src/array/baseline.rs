//! The baseline arrays: ideal RAID-5 and aggregated RAID-5+.

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::Layout;
use craid_simkit::{SimDuration, SimTime};

use crate::background::{BackgroundEngine, BackgroundPriority, Batch, TaskKind};
use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::{DeviceIoEvent, DeviceSet, DiskState};
use crate::error::CraidError;
use crate::fault;
use crate::monitor::MonitorStats;
use crate::partition::{ArchiveLayout, Partition, PartitionIo};
use crate::report::{FaultStats, MigrationStats};
use crate::restripe::RestripeState;
use crate::sim::gcd;

use super::{ExpansionReport, RequestReport, StorageArray};

/// A conventional array without a cache partition: either an ideally
/// restriped RAID-5 (`RAID-5`) or the aggregation of independent RAID-5 sets
/// left behind by upgrades (`RAID-5+`). Maintenance streams — rebuilds and
/// paced restripe migrations — ride on one fair-share
/// [`BackgroundEngine`](crate::background::BackgroundEngine); a paced
/// restripe streams its move set from a cursor
/// ([`RestripeState`](crate::restripe::RestripeState)) instead of
/// materialising an O(dataset) plan.
#[derive(Debug)]
pub struct BaselineArray {
    config: ArrayConfig,
    devices: DeviceSet,
    volume: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
    background: BackgroundEngine,
    /// The in-flight paced restripe, if any: cursor, superseded set, and
    /// the preserved pre-upgrade volume pending blocks still resolve
    /// through. At most one restripe runs at a time — a second `expand`
    /// queues in `deferred` until it drains, like serialized mdadm
    /// reshapes.
    restripe: Option<RestripeState>,
    /// Expansions accepted while a restripe was in flight; each activates
    /// (commits its layout and starts its own restripe) when the previous
    /// restripe drains — and, under
    /// [`ActivationPolicy::WaitForRepair`](crate::config::ActivationPolicy),
    /// only once the array is healthy again.
    activation: super::activation::ActivationQueue,
    fault_stats: FaultStats,
    migration_stats: MigrationStats,
}

impl BaselineArray {
    /// Builds the baseline array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or the
    /// layout cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        let devices = DeviceSet::from_config(&config);
        let volume = Self::build_volume(&config, config.disks, &config.expansion_sets)?;
        let mut background =
            BackgroundEngine::with_shares(config.rebuild_share, config.migration_share);
        if let Some(spec) = &config.qos {
            // A QoS-steered array pays attention to the controller: attach
            // the throttle (at full scale) so retargets can scale pacing.
            background.attach_throttle(spec.floor);
        }
        Ok(BaselineArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            background,
            config,
            devices,
            volume,
            restripe: None,
            activation: super::activation::ActivationQueue::new(),
            fault_stats: FaultStats::default(),
            migration_stats: MigrationStats::default(),
        })
    }

    /// Activates queued deferred expansions whose preconditions now hold:
    /// the blocking restripe has drained and — under the wait-for-repair
    /// policy — the array is healthy. Committing a RAID-5 expansion starts
    /// a new restripe, which re-blocks the rest of the queue (one reshape
    /// at a time, like serialized mdadm grows).
    fn maybe_activate_deferred(&mut self, now: SimTime) {
        loop {
            // Committing an activation starts a new restripe, which
            // re-blocks the rest of the queue — so the gate is re-evaluated
            // every iteration.
            let blocked = self.restripe.is_some()
                || (self.config.activation == crate::config::ActivationPolicy::WaitForRepair
                    && self.devices.degraded_disk().is_some());
            let Some(added) = self.activation.pop_eligible(blocked) else {
                break;
            };
            self.commit_expansion(now, added);
            self.activation.record(now, added);
        }
    }

    fn build_volume(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(craid_raid::Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(craid_raid::Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, 0))
    }

    /// Fraction of logical blocks whose physical location changes between
    /// two volume layouts, estimated by sampling the used address range
    /// (the instant-expand accounting shortcut; paced restripes enumerate
    /// the exact move set via the restripe cursor instead).
    ///
    /// The walk visits `i · stride mod used` for a stride coprime to
    /// `used`: a plain `used / probes` step can resonate with the periodic
    /// round-robin layout and sample a single residue class of each stripe
    /// row, wildly mis-estimating the moved fraction. Coprimality
    /// guarantees the samples cover every residue class of any period
    /// dividing `used`.
    pub(crate) fn restripe_fraction(
        old: &Partition<ArchiveLayout>,
        new: &Partition<ArchiveLayout>,
        used: u64,
    ) -> f64 {
        let probe = used.clamp(1, 8_192);
        // A golden-ratio stride is low-discrepancy; nudge it until it is
        // coprime to `used` (1 always qualifies, so this terminates).
        let mut stride = ((used as f64 * 0.618_033_988_749_895) as u64).clamp(1, used.max(1));
        while gcd(stride, used) != 1 {
            stride -= 1;
        }
        let mut moved = 0u64;
        let mut block = 0u64;
        for _ in 0..probe {
            if old.layout().locate(block) != new.layout().locate(block) {
                moved += 1;
            }
            block = (block + stride) % used;
        }
        moved as f64 / probe as f64
    }

    /// Rewrites a plan for degraded mode when a disk is failed or
    /// rebuilding; a no-op on a healthy array. I/O planned against the
    /// pre-upgrade restripe volume also resolves correctly through the
    /// current layout's peers: a RAID-5 restripe preserves the parity
    /// group width, so old and new peer sets coincide (and RAID-5+ never
    /// migrates), unlike the CRAID cache partition whose groups can
    /// change across an expansion.
    fn degrade(&mut self, plan: Vec<PartitionIo>) -> Vec<PartitionIo> {
        let Some((failed, state)) = self.devices.degraded_disk() else {
            return plan;
        };
        let layout = self.volume.layout();
        fault::degrade_plan(
            plan,
            failed,
            state == DiskState::Rebuilding,
            |io| layout.reconstruction_peers(io.disk),
            &mut self.fault_stats,
        )
    }

    /// Issues the device I/O for the next `budget` restripe moves: advance
    /// the cursor, read each block's pre-upgrade location, write its
    /// post-upgrade home (parity maintenance included).
    fn apply_restripe_batch(&mut self, now: SimTime, budget: u64) -> Vec<DeviceIoEvent> {
        let (moved, ios) = self
            .restripe
            .as_mut()
            .expect("a restripe batch implies restripe state")
            .plan_batch(&self.volume, budget);
        self.migration_stats.migrated_blocks += moved;
        let ios = self.degrade(ios);
        let mut events = Vec::with_capacity(ios.len());
        for io in ios {
            events.push(
                self.devices
                    .submit(now, io.disk, io.kind, io.range, io.purpose),
            );
        }
        events
    }

    /// Blocks a paced restripe still has to move (0 when idle).
    pub fn pending_migration_blocks(&self) -> u64 {
        self.restripe.as_ref().map_or(0, RestripeState::pending)
    }

    /// True if `pa_block` is still awaiting migration to its post-upgrade
    /// home (tests and examples).
    pub fn migration_pending(&self, pa_block: u64) -> bool {
        self.restripe
            .as_ref()
            .is_some_and(|r| r.is_pending(&self.volume, pa_block))
    }

    /// Expansions accepted but not yet activated (queued behind an
    /// in-flight restripe).
    pub fn deferred_expansions(&self) -> usize {
        self.activation.len()
    }

    /// Performs a validated expansion: commits the new geometry and, for a
    /// paced RAID-5 restripe, starts the streaming background task.
    fn commit_expansion(&mut self, now: SimTime, added_disks: usize) -> ExpansionReport {
        let new_disks = self.disks + added_disks;
        let paced = !self.config.instant_migration();
        let (new_volume, new_sets, migrated, start_restripe) = match self.config.strategy {
            StrategyKind::Raid5 => {
                let new_volume = Self::build_volume(&self.config, new_disks, &self.expansion_sets)
                    .expect("expansion geometry was validated before commit");
                let used = self.config.dataset_blocks;
                if paced {
                    // The exact move set, *counted* but never materialised:
                    // the background walk streams it from a cursor (the
                    // paper's conventional-upgrade cost, paid over time at
                    // O(1) memory).
                    let state = RestripeState::new(self.volume.clone(), &new_volume, used);
                    let migrated = state.total_moves();
                    (
                        new_volume,
                        self.expansion_sets.clone(),
                        migrated,
                        Some(state),
                    )
                } else {
                    // Instant accounting: estimate how much of the used
                    // dataset has to move by sampling.
                    let fraction = Self::restripe_fraction(&self.volume, &new_volume, used);
                    let migrated = (fraction * used as f64).round() as u64;
                    (new_volume, self.expansion_sets.clone(), migrated, None)
                }
            }
            StrategyKind::Raid5Plus => {
                // Aggregation: the new disks form a fresh RAID-5 set, nothing
                // moves (and the load stays unbalanced — that is the point).
                let mut new_sets = self.expansion_sets.clone();
                new_sets.push(added_disks);
                let new_volume = Self::build_volume(&self.config, new_disks, &new_sets)
                    .expect("expansion geometry was validated before commit");
                (new_volume, new_sets, 0, None)
            }
            _ => unreachable!("baseline arrays only implement the two baseline strategies"),
        };

        let mut enqueued = 0;
        if let Some(mut state) = start_restripe {
            // The new layout commits now; the copies stream through the
            // background engine. Baselines have no heat signal, so the
            // restripe cursor always walks sequentially — record the
            // *effective* priority so a configured hot-first cannot be
            // mistaken for a null result.
            enqueued = state.total_moves();
            state.task = self.background.push_restripe(
                now,
                enqueued,
                self.config
                    .migration_rate_blocks_per_sec
                    .expect("paced expansions have a finite rate"),
            );
            self.restripe = Some(state);
            self.migration_stats.migrations_started += 1;
            self.migration_stats.effective_priority = Some(BackgroundPriority::Sequential);
        }
        self.volume = new_volume;
        self.expansion_sets = new_sets;
        self.devices.add_hdds(added_disks);
        self.disks = new_disks;
        ExpansionReport {
            added_disks,
            migrated_blocks: migrated,
            writeback_blocks: 0,
            enqueued_blocks: enqueued,
            deferred: false,
            events: Vec::new(),
        }
    }
}

impl StorageArray for BaselineArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.volume.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        0
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.volume.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.volume.data_capacity(),
            });
        }
        // Mid-restripe redirection: reads of blocks the paced migration has
        // not moved yet resolve through the old layout; writes always land
        // at the new home and supersede the pending move.
        let blocks: Vec<u64> = range.blocks().collect();
        let plan = match (self.restripe.as_mut(), kind) {
            (None, _) => self.volume.plan_blocks(kind, &blocks),
            (Some(state), IoKind::Read) => {
                let (pending, settled): (Vec<u64>, Vec<u64>) = blocks
                    .iter()
                    .partition(|&&b| state.is_pending(&self.volume, b));
                let mut plan = self.volume.plan_blocks(kind, &settled);
                plan.extend(state.old.plan_blocks(kind, &pending));
                plan
            }
            (Some(state), IoKind::Write) => {
                let mut superseded = 0;
                for &b in &blocks {
                    if state.supersede(&self.volume, b) {
                        superseded += 1;
                    }
                }
                self.migration_stats.superseded_blocks += superseded;
                let forfeits = state.take_forfeits();
                let task = state.task;
                self.background.forfeit(task, forfeits);
                self.volume.plan_blocks(kind, &blocks)
            }
        };
        let mut report = RequestReport::default();
        let plan = self.degrade(plan);
        let mut finish = now;
        for io in plan {
            let event = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(event.finished);
            report.events.push(event);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        // Transactional, like `CraidArray::expand`: every precondition is
        // checked before any field mutates, so a rejected expansion leaves
        // the array untouched.
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        let paced = !self.config.instant_migration();
        if let Some((disk, state)) = self.devices.degraded_disk() {
            // A failed disk has no data to restripe over. A *rebuilding*
            // one is fine when the upgrade is paced: the restripe fair-
            // shares the background engine with the rebuild. The instant
            // path keeps refusing, bit-for-bit with the pre-engine
            // behaviour. (The in-flight rebuild keeps the segment plan it
            // was created with — a deliberate approximation: the device is
            // unchanged, but its live share shrinks under the
            // post-expansion geometry, so rebuild traffic errs on the
            // generous side.)
            if state == DiskState::Failed || !paced {
                return Err(CraidError::InvalidExpansion(format!(
                    "disk {disk} is {state:?}; wait until the array is healthy before expanding"
                )));
            }
        }
        // Validate the geometry against the *projected* disk count so a
        // deferred expansion can never fail at activation time.
        let projected = self.disks + self.activation.pending_disks() + added_disks;
        match self.config.strategy {
            StrategyKind::Raid5 => {
                // An ideal RAID-5 stays ideal only by restriping.
                if !projected.is_multiple_of(self.config.parity_group) {
                    return Err(CraidError::InvalidExpansion(format!(
                        "RAID-5 restripe needs the disk count ({projected}) to stay a multiple of the parity group ({})",
                        self.config.parity_group
                    )));
                }
            }
            StrategyKind::Raid5Plus => {
                if added_disks < 2 {
                    return Err(CraidError::InvalidExpansion(
                        "a new RAID-5 set needs at least 2 disks".into(),
                    ));
                }
            }
            _ => unreachable!("baseline arrays only implement the two baseline strategies"),
        }
        if self.restripe.is_some() {
            // One archive reshape at a time (a cursor cannot retarget a
            // moving layout): the expansion *queues* instead of being
            // refused, and activates when the in-flight restripe drains —
            // the serialized-reshape behaviour of mdadm-style growers.
            self.activation.defer(added_disks);
            return Ok(ExpansionReport {
                added_disks,
                deferred: true,
                ..ExpansionReport::default()
            });
        }
        Ok(self.commit_expansion(now, added_disks))
    }

    fn fail_disk(&mut self, _now: SimTime, disk: usize) -> Result<(), CraidError> {
        self.devices.fail_disk(disk)?;
        self.fault_stats.disk_failures += 1;
        Ok(())
    }

    fn repair_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError> {
        let peers = self.volume.layout().reconstruction_peers(disk);
        // Rebuild only the live stripes: the volume's share of the dataset,
        // parity overhead included via the physical-to-logical ratio. With
        // no I/O monitor to rank heat, the baselines always stream
        // sequentially regardless of the configured priority.
        let live = fault::live_blocks(
            self.volume.layout().blocks_per_disk(),
            self.volume.data_capacity(),
            self.config.dataset_blocks,
        )
        .min(self.devices.capacity_blocks(disk))
        .max(1);
        fault::start_rebuild(
            &mut self.background,
            &mut self.devices,
            now,
            disk,
            peers,
            fault::rebuild_segments(live, Vec::new()),
            self.config.rebuild_rate_blocks_per_sec,
            &mut self.fault_stats,
        )
    }

    fn pump_background(&mut self, now: SimTime) -> Vec<DeviceIoEvent> {
        let mut events = Vec::new();
        self.pump_background_into(now, &mut events);
        events
    }

    fn pump_background_into(&mut self, now: SimTime, events: &mut Vec<DeviceIoEvent>) {
        for batch in self.background.poll(now) {
            match batch {
                Batch::Rebuild {
                    disk,
                    peers,
                    ranges,
                    ..
                } => {
                    fault::issue_rebuild_batch(
                        now,
                        disk,
                        &peers,
                        &ranges,
                        &mut self.devices,
                        events,
                        &mut self.fault_stats,
                    );
                }
                Batch::Restripe { budget, .. } => {
                    events.extend(self.apply_restripe_batch(now, budget));
                }
                Batch::Migration { .. } => {
                    unreachable!("baseline arrays enqueue no block-list migrations")
                }
            }
        }
        for done in self.background.take_completed() {
            match done.kind {
                TaskKind::Rebuild => {
                    fault::complete_rebuild(&done, &mut self.devices, &mut self.fault_stats);
                }
                TaskKind::ExpansionMigration | TaskKind::ArchiveRestripe => {
                    // The baseline's restripe *is* its expansion migration
                    // (the conventional-upgrade cost), so it reports on the
                    // main migration line.
                    debug_assert!(
                        self.restripe.as_ref().is_some_and(RestripeState::drained),
                        "a completed restripe leaves no pending moves"
                    );
                    self.restripe = None;
                    self.migration_stats.migrations_completed += 1;
                    self.migration_stats.migration_secs += done.window_secs;
                }
            }
        }
        // A queued expansion activates the moment the reshape that blocked
        // it drains — by default even if the array has since degraded
        // (deliberate: the activation was accepted while healthy, and its
        // restripe I/O runs through `degrade` like any other traffic, so
        // the model stays total instead of stranding the queue on a disk
        // that may never be repaired). With `activation =
        // "wait-for-repair"` the activation instead holds until the
        // rebuild completes.
        self.maybe_activate_deferred(now);
    }

    fn background_work_due(&mut self, now: SimTime) -> bool {
        // Deferred expansions cannot unblock between pumps (the gating
        // reshape or rebuild completes inside one, and an empty task
        // reports "due now"), so the pacing clocks alone decide.
        self.background.work_due(now)
    }

    fn background_idle(&self) -> bool {
        // A deferred expansion blocked by wait-for-repair on a *failed*
        // disk (no rebuild task exists) counts as idle: nothing can make
        // progress until a `disk-repair` event arrives, and the
        // end-of-trace drain must not spin on it.
        self.background.is_idle()
            && self
                .activation
                .idle_under(self.config.activation, self.devices.degraded_disk().is_some())
    }

    fn set_background_throttle(&mut self, now: SimTime, scale: f64) {
        self.background.set_throttle(now, scale);
    }

    fn take_activations(&mut self) -> Vec<super::ActivatedExpansion> {
        self.activation.take_activations()
    }

    fn background_drain_eta(&self) -> Option<SimTime> {
        self.background.drain_eta()
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    fn migration_stats(&self) -> MigrationStats {
        MigrationStats {
            pending_blocks: self.pending_migration_blocks(),
            ..self.migration_stats
        }
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        None
    }
}

impl BaselineArray {
    /// Mean response time observed so far across all devices — a cheap
    /// smoke-test accessor used by examples.
    pub fn mean_device_busy(&self) -> SimDuration {
        let stats = self.devices.load_stats();
        let total: SimDuration = stats.iter().map(|s| s.busy).sum();
        total / stats.len().max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::{round_robin_migration_blocks, IoPurpose};

    fn array(strategy: StrategyKind) -> BaselineArray {
        BaselineArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    fn paced(strategy: StrategyKind, rate: f64) -> BaselineArray {
        BaselineArray::new(
            ArrayConfig::small_test(strategy, 10_000).with_migration_rate(Some(rate)),
        )
        .unwrap()
    }

    fn drain(a: &mut BaselineArray, mut t: f64) -> f64 {
        while !a.background_idle() && t < 5_000.0 {
            a.pump_background(SimTime::from_secs(t));
            t += 1.0;
        }
        assert!(a.background_idle());
        t
    }

    #[test]
    fn read_touches_only_data_disks() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.response > SimDuration::ZERO);
        assert!(report.events.iter().all(|e| e.kind == IoKind::Read));
        assert_eq!(report.cache_hit_blocks, 0);
    }

    #[test]
    fn write_pays_parity_maintenance() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(report
            .events
            .iter()
            .any(|e| e.purpose == IoPurpose::ParityWrite));
        let read_resp = array(StrategyKind::Raid5)
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(100, 2))
            .unwrap()
            .response;
        assert!(
            report.response > read_resp,
            "RMW writes cost more than reads"
        );
    }

    #[test]
    fn raid5plus_spreads_sets_over_disjoint_disks() {
        let mut a = array(StrategyKind::Raid5Plus);
        // The first set owns disks 0..4: a low address only touches those.
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.events.iter().all(|e| e.device < 4));
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let mut a = array(StrategyKind::Raid5);
        let cap = a.capacity_blocks();
        let err = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .unwrap_err();
        assert!(matches!(err, CraidError::OutOfRange { .. }));
    }

    #[test]
    fn raid5_expansion_migrates_most_of_the_dataset() {
        let mut a = array(StrategyKind::Raid5);
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(a.disk_count(), 12);
        assert!(
            report.migrated_blocks as f64 > 0.5 * 10_000.0,
            "an ideal restripe moves most used blocks, got {}",
            report.migrated_blocks
        );
        // The array still serves requests afterwards.
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn restripe_fraction_estimate_tracks_the_exact_move_count() {
        // An adversarial `used`: a multiple of both layouts' row widths
        // times the probe count, so the old `used / 8192` sampling stride
        // walked whole stripe rows and probed a single residue class. The
        // coprime-stride sampler stays within a point of the exact
        // fraction from `round_robin_migration_blocks`.
        let config = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        let old = BaselineArray::build_volume(&config, 8, &[]).unwrap();
        let new = BaselineArray::build_volume(&config, 12, &[]).unwrap();
        // Old rows carry (8-2)*4 = 24 data blocks, new rows (12-3)*4 = 36;
        // lcm(24, 36) = 72.
        let used = 8_192 * 72;
        assert!(used <= old.data_capacity() && used <= new.data_capacity());
        let exact =
            round_robin_migration_blocks(old.layout(), new.layout(), used) as f64 / used as f64;
        let estimate = BaselineArray::restripe_fraction(&old, &new, used);
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate:.4} strays from exact {exact:.4} on a stride-resonant geometry"
        );
        // And on a small range it degenerates gracefully.
        assert!(BaselineArray::restripe_fraction(&old, &new, 1) <= 1.0);
    }

    #[test]
    fn raid5plus_expansion_migrates_nothing() {
        let mut a = array(StrategyKind::Raid5Plus);
        let cap_before = a.capacity_blocks();
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(a.disk_count(), 12);
        assert!(a.capacity_blocks() > cap_before);
    }

    #[test]
    fn invalid_expansions_are_rejected() {
        let mut a = array(StrategyKind::Raid5Plus);
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        assert!(
            a.expand(SimTime::ZERO, 1).is_err(),
            "a one-disk RAID-5 set is not valid"
        );
        let mut a = array(StrategyKind::Raid5);
        assert!(
            a.expand(SimTime::ZERO, 3).is_err(),
            "restripe must keep the parity group alignment"
        );
    }

    #[test]
    fn rejected_expansion_leaves_the_baseline_bit_identical() {
        for (strategy, bad_added) in [(StrategyKind::Raid5, 3), (StrategyKind::Raid5Plus, 1)] {
            let mut touched = array(strategy);
            let mut pristine = array(strategy);
            for b in 0..30u64 {
                for a in [&mut touched, &mut pristine] {
                    a.submit(
                        SimTime::from_millis(b as f64 * 7.0),
                        IoKind::Write,
                        BlockRange::new(b * 32 % 9_000, 2),
                    )
                    .unwrap();
                }
            }
            assert!(touched.expand(SimTime::from_secs(1.0), bad_added).is_err());
            assert_eq!(touched.disk_count(), pristine.disk_count(), "{strategy}");
            assert_eq!(touched.capacity_blocks(), pristine.capacity_blocks());
            assert_eq!(touched.expansion_sets, pristine.expansion_sets);
            assert_eq!(touched.device_stats(), pristine.device_stats());
            // Subsequent traffic behaves byte-identically on both arrays.
            let now = SimTime::from_secs(2.0);
            let got = touched
                .submit(now, IoKind::Read, BlockRange::new(123, 5))
                .unwrap();
            let want = pristine
                .submit(now, IoKind::Read, BlockRange::new(123, 5))
                .unwrap();
            assert_eq!(got, want, "{strategy} diverged after the failed expand");
            // A valid expansion still succeeds afterwards.
            assert!(touched.expand(SimTime::from_secs(3.0), 4).is_ok());
        }
    }

    #[test]
    fn degraded_reads_fan_out_within_the_owning_raid5plus_set() {
        use craid_raid::IoPurpose as P;
        let mut a = array(StrategyKind::Raid5Plus); // sets [4, 4]
        a.fail_disk(SimTime::ZERO, 1).unwrap();
        // A low address lives in set 0 (disks 0..4): its degraded read is
        // reconstructed from that set only.
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 8))
            .unwrap();
        let recon: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.purpose == P::ReconstructRead)
            .collect();
        assert!(!recon.is_empty(), "disk 1 held part of the range");
        assert!(recon.iter().all(|e| e.device < 4 && e.device != 1));
        assert!(report.events.iter().all(|e| e.device != 1));
        assert!(a.fault_stats().degraded_reads > 0);
        // Expansion is refused while degraded (instant-migration mode)...
        assert!(matches!(
            a.expand(SimTime::from_secs(1.0), 4),
            Err(CraidError::InvalidExpansion(_))
        ));
        // ...and allowed again once the spare is in and rebuilt.
        let mut cfg = ArrayConfig::small_test(StrategyKind::Raid5Plus, 10_000);
        cfg.rebuild_rate_blocks_per_sec = 10_000_000.0;
        let mut b = BaselineArray::new(cfg).unwrap();
        b.fail_disk(SimTime::ZERO, 1).unwrap();
        b.repair_disk(SimTime::from_secs(1.0), 1).unwrap();
        let mut t = 2.0;
        while b.fault_stats().rebuilds_completed == 0 && t < 50.0 {
            b.pump_background(SimTime::from_secs(t));
            b.submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 2))
                .unwrap();
            t += 1.0;
        }
        assert_eq!(b.fault_stats().rebuilds_completed, 1);
        assert!(b.fault_stats().rebuild_read_blocks > 0);
        assert!(b.expand(SimTime::from_secs(t), 4).is_ok());
    }

    #[test]
    fn device_stats_accumulate() {
        let mut a = array(StrategyKind::Raid5);
        for i in 0..20u64 {
            a.submit(
                SimTime::from_millis(i as f64 * 10.0),
                IoKind::Read,
                BlockRange::new(i * 37 % 9_000, 4),
            )
            .unwrap();
        }
        let stats = a.device_stats();
        assert_eq!(stats.len(), 8);
        let total: u64 = stats.iter().map(|s| s.requests).sum();
        assert!(total >= 20);
        assert!(a.mean_device_busy() > SimDuration::ZERO);
        assert!(a.monitor_stats().is_none());
    }

    #[test]
    fn paced_restripe_serves_pending_blocks_from_the_old_layout() {
        let mut a = paced(StrategyKind::Raid5, 100.0);
        let old_volume = a.volume.clone();
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert_eq!(a.disk_count(), 12, "the layout committed immediately");
        assert!(report.enqueued_blocks > 0);
        assert!(!report.deferred);
        assert_eq!(
            report.enqueued_blocks, report.migrated_blocks,
            "paced restripes count the exact move set"
        );
        assert_eq!(a.pending_migration_blocks(), report.enqueued_blocks);
        assert_eq!(
            a.migration_stats().effective_priority,
            Some(BackgroundPriority::Sequential),
            "baselines report the effective (sequential) order"
        );
        // A pending block still reads from its pre-upgrade location.
        let pending = (0..10_000u64)
            .find(|&b| a.migration_pending(b))
            .expect("an 8→12 restripe moves blocks");
        let old_plan = old_volume.plan_blocks(IoKind::Read, &[pending]);
        let new_plan = a.volume.plan_blocks(IoKind::Read, &[pending]);
        assert_ne!(old_plan, new_plan, "the block's location changed");
        let r = a
            .submit(
                SimTime::from_secs(1.5),
                IoKind::Read,
                BlockRange::new(pending, 1),
            )
            .unwrap();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].device, old_plan[0].disk);
        assert_eq!(r.events[0].start_block, old_plan[0].range.start());
        // A write supersedes the pending move and lands at the new home.
        let before = a.pending_migration_blocks();
        let w = a
            .submit(
                SimTime::from_secs(2.0),
                IoKind::Write,
                BlockRange::new(pending, 1),
            )
            .unwrap();
        assert_eq!(a.pending_migration_blocks(), before - 1);
        assert!(a.migration_stats().superseded_blocks >= 1);
        assert!(
            w.events
                .iter()
                .any(|e| e.device == new_plan[0].disk
                    && e.start_block == new_plan[0].range.start()),
            "the write targets the post-upgrade home"
        );
    }

    #[test]
    fn paced_restripe_drains_and_reports_the_window() {
        let mut a = paced(StrategyKind::Raid5, 100_000.0);
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let mut t = 2.0;
        let mut saw_migration_io = false;
        while !a.background_idle() && t < 400.0 {
            let events = a.pump_background(SimTime::from_secs(t));
            saw_migration_io |= events.iter().any(|e| e.purpose.is_migration());
            t += 1.0;
        }
        assert!(a.background_idle());
        assert!(saw_migration_io);
        let stats = a.migration_stats();
        assert_eq!(stats.migrations_completed, 1);
        assert_eq!(stats.pending_blocks, 0);
        assert!(stats.migration_secs > 0.0, "a nonzero upgrade window");
        assert!(
            stats.migrated_blocks + stats.superseded_blocks >= 5_000,
            "most of the dataset moved"
        );
        // After the drain, reads resolve purely through the new layout.
        assert!(a
            .submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn paced_restripe_streams_paper_scale_datasets_without_materialising() {
        // 4M used blocks: the pre-cursor implementation collected a Vec of
        // millions of move entries *and* mirrored them into a pending map
        // at expand time. The streaming restripe keeps O(1) state — this
        // test would exhaust test-runner memory budgets (and minutes of
        // BTreeMap churn) under the old scheme, and the expand itself now
        // only pays one counting pass.
        let dataset: u64 = 4_000_000;
        let config =
            ArrayConfig::small_test(StrategyKind::Raid5, dataset).with_migration_rate(Some(1e6));
        let mut a = BaselineArray::new(config).unwrap();
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(
            report.enqueued_blocks > 3_000_000,
            "nearly the whole dataset restripes, got {}",
            report.enqueued_blocks
        );
        assert_eq!(a.pending_migration_blocks(), report.enqueued_blocks);
        // The engine tracks a bare count; a few pumps stream capped batches.
        let events = a.pump_background(SimTime::from_secs(3.0));
        assert!(events.iter().any(|e| e.purpose.is_migration()));
        assert!(a.pending_migration_blocks() < report.enqueued_blocks);
        // Requests against pending and settled blocks both resolve.
        a.submit(SimTime::from_secs(3.5), IoKind::Read, BlockRange::new(0, 8))
            .unwrap();
        a.submit(
            SimTime::from_secs(3.6),
            IoKind::Write,
            BlockRange::new(dataset - 8, 8),
        )
        .unwrap();
        let stats = a.migration_stats();
        assert_eq!(
            stats.migrated_blocks + stats.superseded_blocks + stats.pending_blocks,
            report.enqueued_blocks
        );
    }

    #[test]
    fn second_expansion_queues_behind_the_restripe_and_activates() {
        let mut a = paced(StrategyKind::Raid5, 50_000.0);
        let first = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(!first.deferred);
        // The second expand queues instead of being refused.
        let second = a.expand(SimTime::from_secs(2.0), 4).unwrap();
        assert!(second.deferred);
        assert_eq!(a.deferred_expansions(), 1);
        assert_eq!(a.disk_count(), 12, "the deferred layout is not committed");
        // A geometry that would break the *projected* count is still
        // rejected up front (12 + 4 + 3 = 19 is not a multiple of 4).
        assert!(a.expand(SimTime::from_secs(2.5), 3).is_err());
        let t = drain(&mut a, 3.0);
        assert_eq!(a.disk_count(), 16, "the queued expansion activated");
        assert_eq!(a.deferred_expansions(), 0);
        let stats = a.migration_stats();
        assert_eq!(stats.migrations_started, 2);
        assert_eq!(stats.migrations_completed, 2);
        assert_eq!(stats.pending_blocks, 0);
        assert!(a
            .submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn paced_raid5plus_expansion_still_moves_nothing() {
        let mut a = paced(StrategyKind::Raid5Plus, 100.0);
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert_eq!(report.enqueued_blocks, 0);
        assert!(a.background_idle(), "no task for a zero-move upgrade");
        assert_eq!(a.migration_stats().migrations_started, 0);
    }

    #[test]
    fn fail_during_paced_migration_fair_shares_with_the_rebuild() {
        let mut cfg = ArrayConfig::small_test(StrategyKind::Raid5, 10_000)
            .with_migration_rate(Some(1_000_000.0));
        cfg.rebuild_rate_blocks_per_sec = 1_000_000.0;
        let mut a = BaselineArray::new(cfg).unwrap();
        a.expand(SimTime::from_secs(1.0), 4).unwrap();
        assert!(!a.background_idle());
        // The failure arrives mid-migration; the repair's rebuild runs
        // *concurrently* with the restripe on the fair-share engine.
        a.fail_disk(SimTime::from_secs(1.5), 3).unwrap();
        a.repair_disk(SimTime::from_secs(2.0), 3).unwrap();
        assert!(a.background.has_task(TaskKind::ArchiveRestripe));
        assert!(a.background.has_task(TaskKind::Rebuild));
        // One pump with both saturated advances both streams.
        let migrated_before = a.migration_stats().migrated_blocks;
        let rebuilt_before = a.fault_stats().rebuild_write_blocks;
        a.pump_background(SimTime::from_secs(2.5));
        assert!(a.migration_stats().migrated_blocks > migrated_before);
        assert!(a.fault_stats().rebuild_write_blocks > rebuilt_before);
        let _ = drain(&mut a, 3.0);
        assert_eq!(a.migration_stats().migrations_completed, 1);
        assert_eq!(a.fault_stats().rebuilds_completed, 1);
        assert_eq!(a.devices.degraded_disk(), None, "the array healed");
    }
}
