//! The baseline arrays: ideal RAID-5 and aggregated RAID-5+.

use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_raid::{Layout, Raid5Layout, Raid5PlusLayout};
use craid_simkit::{SimDuration, SimTime};

use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::{DeviceSet, DiskState};
use crate::error::CraidError;
use crate::fault::{self, RebuildEngine};
use crate::monitor::MonitorStats;
use crate::partition::{ArchiveLayout, Partition};
use crate::report::FaultStats;

use super::{ExpansionReport, RequestReport, StorageArray};

/// A conventional array without a cache partition: either an ideally
/// restriped RAID-5 (`RAID-5`) or the aggregation of independent RAID-5 sets
/// left behind by upgrades (`RAID-5+`).
#[derive(Debug)]
pub struct BaselineArray {
    config: ArrayConfig,
    devices: DeviceSet,
    volume: Partition<ArchiveLayout>,
    disks: usize,
    expansion_sets: Vec<usize>,
    rebuild: Option<RebuildEngine>,
    fault_stats: FaultStats,
}

impl BaselineArray {
    /// Builds the baseline array described by `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is invalid or the
    /// layout cannot be constructed.
    pub fn new(config: ArrayConfig) -> Result<Self, CraidError> {
        config.validate()?;
        let devices = DeviceSet::from_config(&config);
        let volume = Self::build_volume(&config, config.disks, &config.expansion_sets)?;
        Ok(BaselineArray {
            disks: config.disks,
            expansion_sets: config.expansion_sets.clone(),
            config,
            devices,
            volume,
            rebuild: None,
            fault_stats: FaultStats::default(),
        })
    }

    fn build_volume(
        config: &ArrayConfig,
        disks: usize,
        sets: &[usize],
    ) -> Result<Partition<ArchiveLayout>, CraidError> {
        let blocks_per_disk = config.pa_blocks_per_hdd();
        let layout = if config.strategy.archive_is_aggregated() {
            ArchiveLayout::Aggregated(Raid5PlusLayout::new(
                sets,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        } else {
            ArchiveLayout::Ideal(Raid5Layout::new(
                disks,
                config.parity_group,
                config.stripe_unit,
                blocks_per_disk,
            )?)
        };
        Ok(Partition::new(layout, 0, 0))
    }

    /// Fraction of logical blocks whose physical location changes between
    /// two volume layouts, estimated by sampling the used address range.
    fn restripe_fraction(
        old: &Partition<ArchiveLayout>,
        new: &Partition<ArchiveLayout>,
        used: u64,
    ) -> f64 {
        let probe = used.clamp(1, 8_192);
        let step = (used / probe).max(1);
        let mut moved = 0u64;
        let mut sampled = 0u64;
        let mut block = 0u64;
        while block < used && sampled < probe {
            if old.layout().locate(block) != new.layout().locate(block) {
                moved += 1;
            }
            sampled += 1;
            block += step;
        }
        if sampled == 0 {
            0.0
        } else {
            moved as f64 / sampled as f64
        }
    }
}

impl StorageArray for BaselineArray {
    fn strategy(&self) -> StrategyKind {
        self.config.strategy
    }

    fn disk_count(&self) -> usize {
        self.disks
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn capacity_blocks(&self) -> u64 {
        self.volume.data_capacity()
    }

    fn pc_capacity_blocks(&self) -> u64 {
        0
    }

    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError> {
        if range.end() > self.volume.data_capacity() {
            return Err(CraidError::OutOfRange {
                start: range.start(),
                blocks: range.len(),
                capacity: self.volume.data_capacity(),
            });
        }
        let blocks: Vec<u64> = range.blocks().collect();
        let mut plan = self.volume.plan_blocks(kind, &blocks);
        let mut report = RequestReport::default();
        // Interleave one catch-up batch of background rebuild traffic ahead
        // of the client I/O.
        fault::step_rebuild(
            &mut self.rebuild,
            now,
            &mut self.devices,
            &mut report.events,
            &mut self.fault_stats,
        );
        if let Some((failed, state)) = self.devices.degraded_disk() {
            let layout = self.volume.layout();
            plan = fault::degrade_plan(
                plan,
                failed,
                state == DiskState::Rebuilding,
                |io| layout.reconstruction_peers(io.disk),
                &mut self.fault_stats,
            );
        }
        let mut finish = now;
        for io in plan {
            let event = self
                .devices
                .submit(now, io.disk, io.kind, io.range, io.purpose);
            finish = finish.max(event.finished);
            report.events.push(event);
        }
        report.response = finish.saturating_since(now);
        Ok(report)
    }

    fn expand(&mut self, _now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError> {
        // Transactional, like `CraidArray::expand`: every precondition is
        // checked and the new volume is built before any field mutates, so
        // a rejected expansion leaves the array untouched.
        if added_disks == 0 {
            return Err(CraidError::InvalidExpansion("no disks added".into()));
        }
        if let Some((disk, state)) = self.devices.degraded_disk() {
            // A failed disk has no data to restripe over; a rebuilding one
            // has an engine pacing itself against the pre-expansion
            // geometry. Both must resolve before the geometry changes.
            return Err(CraidError::InvalidExpansion(format!(
                "disk {disk} is {state:?}; wait until the array is healthy before expanding"
            )));
        }
        let new_disks = self.disks + added_disks;
        let (new_volume, new_sets, migrated) = match self.config.strategy {
            StrategyKind::Raid5 => {
                // An ideal RAID-5 stays ideal only by restriping: count how
                // much of the used dataset has to move.
                if !new_disks.is_multiple_of(self.config.parity_group) {
                    return Err(CraidError::InvalidExpansion(format!(
                        "RAID-5 restripe needs the disk count ({new_disks}) to stay a multiple of the parity group ({})",
                        self.config.parity_group
                    )));
                }
                let new_volume = Self::build_volume(&self.config, new_disks, &self.expansion_sets)?;
                let used = self.config.dataset_blocks;
                let fraction = Self::restripe_fraction(&self.volume, &new_volume, used);
                let migrated = (fraction * used as f64).round() as u64;
                (new_volume, self.expansion_sets.clone(), migrated)
            }
            StrategyKind::Raid5Plus => {
                // Aggregation: the new disks form a fresh RAID-5 set, nothing
                // moves (and the load stays unbalanced — that is the point).
                if added_disks < 2 {
                    return Err(CraidError::InvalidExpansion(
                        "a new RAID-5 set needs at least 2 disks".into(),
                    ));
                }
                let mut new_sets = self.expansion_sets.clone();
                new_sets.push(added_disks);
                let new_volume = Self::build_volume(&self.config, new_disks, &new_sets)?;
                (new_volume, new_sets, 0)
            }
            _ => unreachable!("baseline arrays only implement the two baseline strategies"),
        };

        // Validation complete — commit the upgrade.
        self.volume = new_volume;
        self.expansion_sets = new_sets;
        self.devices.add_hdds(added_disks);
        self.disks = new_disks;
        Ok(ExpansionReport {
            added_disks,
            migrated_blocks: migrated,
            writeback_blocks: 0,
            events: Vec::new(),
        })
    }

    fn fail_disk(&mut self, _now: SimTime, disk: usize) -> Result<(), CraidError> {
        self.devices.fail_disk(disk)?;
        self.fault_stats.disk_failures += 1;
        Ok(())
    }

    fn repair_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError> {
        let peers = self.volume.layout().reconstruction_peers(disk);
        // Rebuild only the live stripes: the volume's share of the dataset,
        // parity overhead included via the physical-to-logical ratio.
        let live = fault::live_blocks(
            self.volume.layout().blocks_per_disk(),
            self.volume.data_capacity(),
            self.config.dataset_blocks,
        );
        fault::start_rebuild(
            &mut self.rebuild,
            &mut self.devices,
            now,
            disk,
            peers,
            live,
            self.config.rebuild_rate_blocks_per_sec,
            &mut self.fault_stats,
        )
    }

    fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    fn device_stats(&self) -> Vec<DeviceLoadStats> {
        self.devices.load_stats()
    }

    fn monitor_stats(&self) -> Option<MonitorStats> {
        None
    }
}

impl BaselineArray {
    /// Mean response time observed so far across all devices — a cheap
    /// smoke-test accessor used by examples.
    pub fn mean_device_busy(&self) -> SimDuration {
        let stats = self.devices.load_stats();
        let total: SimDuration = stats.iter().map(|s| s.busy).sum();
        total / stats.len().max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::IoPurpose;

    fn array(strategy: StrategyKind) -> BaselineArray {
        BaselineArray::new(ArrayConfig::small_test(strategy, 10_000)).unwrap()
    }

    #[test]
    fn read_touches_only_data_disks() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.response > SimDuration::ZERO);
        assert!(report.events.iter().all(|e| e.kind == IoKind::Read));
        assert_eq!(report.cache_hit_blocks, 0);
    }

    #[test]
    fn write_pays_parity_maintenance() {
        let mut a = array(StrategyKind::Raid5);
        let report = a
            .submit(SimTime::ZERO, IoKind::Write, BlockRange::new(100, 2))
            .unwrap();
        assert!(report
            .events
            .iter()
            .any(|e| e.purpose == IoPurpose::ParityWrite));
        let read_resp = array(StrategyKind::Raid5)
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(100, 2))
            .unwrap()
            .response;
        assert!(
            report.response > read_resp,
            "RMW writes cost more than reads"
        );
    }

    #[test]
    fn raid5plus_spreads_sets_over_disjoint_disks() {
        let mut a = array(StrategyKind::Raid5Plus);
        // The first set owns disks 0..4: a low address only touches those.
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .unwrap();
        assert!(report.events.iter().all(|e| e.device < 4));
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let mut a = array(StrategyKind::Raid5);
        let cap = a.capacity_blocks();
        let err = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap, 1))
            .unwrap_err();
        assert!(matches!(err, CraidError::OutOfRange { .. }));
    }

    #[test]
    fn raid5_expansion_migrates_most_of_the_dataset() {
        let mut a = array(StrategyKind::Raid5);
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(a.disk_count(), 12);
        assert!(
            report.migrated_blocks as f64 > 0.5 * 10_000.0,
            "an ideal restripe moves most used blocks, got {}",
            report.migrated_blocks
        );
        // The array still serves requests afterwards.
        assert!(a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
            .is_ok());
    }

    #[test]
    fn raid5plus_expansion_migrates_nothing() {
        let mut a = array(StrategyKind::Raid5Plus);
        let cap_before = a.capacity_blocks();
        let report = a.expand(SimTime::ZERO, 4).unwrap();
        assert_eq!(report.migrated_blocks, 0);
        assert_eq!(a.disk_count(), 12);
        assert!(a.capacity_blocks() > cap_before);
    }

    #[test]
    fn invalid_expansions_are_rejected() {
        let mut a = array(StrategyKind::Raid5Plus);
        assert!(a.expand(SimTime::ZERO, 0).is_err());
        assert!(
            a.expand(SimTime::ZERO, 1).is_err(),
            "a one-disk RAID-5 set is not valid"
        );
        let mut a = array(StrategyKind::Raid5);
        assert!(
            a.expand(SimTime::ZERO, 3).is_err(),
            "restripe must keep the parity group alignment"
        );
    }

    #[test]
    fn rejected_expansion_leaves_the_baseline_bit_identical() {
        for (strategy, bad_added) in [(StrategyKind::Raid5, 3), (StrategyKind::Raid5Plus, 1)] {
            let mut touched = array(strategy);
            let mut pristine = array(strategy);
            for b in 0..30u64 {
                for a in [&mut touched, &mut pristine] {
                    a.submit(
                        SimTime::from_millis(b as f64 * 7.0),
                        IoKind::Write,
                        BlockRange::new(b * 32 % 9_000, 2),
                    )
                    .unwrap();
                }
            }
            assert!(touched.expand(SimTime::from_secs(1.0), bad_added).is_err());
            assert_eq!(touched.disk_count(), pristine.disk_count(), "{strategy}");
            assert_eq!(touched.capacity_blocks(), pristine.capacity_blocks());
            assert_eq!(touched.expansion_sets, pristine.expansion_sets);
            assert_eq!(touched.device_stats(), pristine.device_stats());
            // Subsequent traffic behaves byte-identically on both arrays.
            let now = SimTime::from_secs(2.0);
            let got = touched
                .submit(now, IoKind::Read, BlockRange::new(123, 5))
                .unwrap();
            let want = pristine
                .submit(now, IoKind::Read, BlockRange::new(123, 5))
                .unwrap();
            assert_eq!(got, want, "{strategy} diverged after the failed expand");
            // A valid expansion still succeeds afterwards.
            assert!(touched.expand(SimTime::from_secs(3.0), 4).is_ok());
        }
    }

    #[test]
    fn degraded_reads_fan_out_within_the_owning_raid5plus_set() {
        use craid_raid::IoPurpose as P;
        let mut a = array(StrategyKind::Raid5Plus); // sets [4, 4]
        a.fail_disk(SimTime::ZERO, 1).unwrap();
        // A low address lives in set 0 (disks 0..4): its degraded read is
        // reconstructed from that set only.
        let report = a
            .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 8))
            .unwrap();
        let recon: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.purpose == P::ReconstructRead)
            .collect();
        assert!(!recon.is_empty(), "disk 1 held part of the range");
        assert!(recon.iter().all(|e| e.device < 4 && e.device != 1));
        assert!(report.events.iter().all(|e| e.device != 1));
        assert!(a.fault_stats().degraded_reads > 0);
        // Expansion is refused while degraded...
        assert!(matches!(
            a.expand(SimTime::from_secs(1.0), 4),
            Err(CraidError::InvalidExpansion(_))
        ));
        // ...and allowed again once the spare is in and rebuilt.
        let mut cfg = ArrayConfig::small_test(StrategyKind::Raid5Plus, 10_000);
        cfg.rebuild_rate_blocks_per_sec = 10_000_000.0;
        let mut b = BaselineArray::new(cfg).unwrap();
        b.fail_disk(SimTime::ZERO, 1).unwrap();
        b.repair_disk(SimTime::from_secs(1.0), 1).unwrap();
        let mut t = 2.0;
        while b.fault_stats().rebuilds_completed == 0 && t < 50.0 {
            b.submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(0, 2))
                .unwrap();
            t += 1.0;
        }
        assert_eq!(b.fault_stats().rebuilds_completed, 1);
        assert!(b.fault_stats().rebuild_read_blocks > 0);
        assert!(b.expand(SimTime::from_secs(t), 4).is_ok());
    }

    #[test]
    fn device_stats_accumulate() {
        let mut a = array(StrategyKind::Raid5);
        for i in 0..20u64 {
            a.submit(
                SimTime::from_millis(i as f64 * 10.0),
                IoKind::Read,
                BlockRange::new(i * 37 % 9_000, 4),
            )
            .unwrap();
        }
        let stats = a.device_stats();
        assert_eq!(stats.len(), 8);
        let total: u64 = stats.iter().map(|s| s.requests).sum();
        assert!(total >= 20);
        assert!(a.mean_device_busy() > SimDuration::ZERO);
        assert!(a.monitor_stats().is_none());
    }
}
