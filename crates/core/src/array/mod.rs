//! Simulated storage arrays for the six allocation policies of the paper.

mod activation;
mod baseline;
mod craid_array;

pub use baseline::BaselineArray;
pub use craid_array::CraidArray;

use craid_cache::PolicyKind;
use craid_diskmodel::{BlockRange, DeviceLoadStats, IoKind};
use craid_simkit::{SimDuration, SimTime};

use crate::config::{ArrayConfig, StrategyKind};
use crate::devices::DeviceIoEvent;
use crate::error::CraidError;
use crate::monitor::MonitorStats;
use crate::report::{FaultStats, MigrationStats};

/// Completion report for one client request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestReport {
    /// Time from arrival to completion of the foreground I/Os.
    pub response: SimDuration,
    /// Every device-level I/O the request caused (foreground and
    /// background), for the metrics trackers.
    pub events: Vec<DeviceIoEvent>,
    /// Blocks served from an existing cache-partition copy (0 for
    /// baselines).
    pub cache_hit_blocks: u64,
    /// Blocks admitted into the cache partition (0 for baselines).
    pub admitted_blocks: u64,
    /// Evictions triggered (0 for baselines).
    pub evictions: u64,
    /// Evictions requiring an archive write-back (0 for baselines).
    pub dirty_writebacks: u64,
}

/// Outcome of one online upgrade (disk addition).
#[derive(Debug, Clone, Default)]
pub struct ExpansionReport {
    /// Disks added by this upgrade.
    pub added_disks: usize,
    /// Blocks that have to move so the strategy regains its target layout.
    /// For CRAID this is bounded by the cache-partition residency; for an
    /// ideally restriped RAID-5 it is (nearly) the whole used dataset; for
    /// RAID-5+ it is zero (new sets start empty).
    pub migrated_blocks: u64,
    /// Dirty cached blocks written back to the archive during the
    /// cache-partition invalidation (CRAID only; 0 for a paced upgrade,
    /// which redistributes dirty copies instead of writing them back).
    pub writeback_blocks: u64,
    /// Blocks enqueued on the background engine for paced migration (0 for
    /// an instant upgrade, which moves everything at event time).
    pub enqueued_blocks: u64,
    /// True when the expansion was *queued* instead of committed: an
    /// archive restripe from a previous upgrade was still in flight, so
    /// this one activates (commits its layout and starts its own paced
    /// migration) when that restripe drains. All counters above are zero
    /// for a deferred report — the activation accounts into
    /// [`MigrationStats`] instead.
    pub deferred: bool,
    /// Device I/Os issued by the upgrade itself at event time (instant-mode
    /// write-backs; empty for a paced upgrade — its I/O streams through the
    /// background engine instead).
    pub events: Vec<DeviceIoEvent>,
}

/// One deferred expansion that activated during a background pump: the
/// queued upgrade's layout committed and its own paced migration started.
/// Drained by the simulation driver via [`StorageArray::take_activations`]
/// and surfaced through
/// [`Observer::on_deferred_activation`](crate::observer::Observer::on_deferred_activation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivatedExpansion {
    /// The simulated instant the activation fired.
    pub at: SimTime,
    /// Disks the activated expansion added.
    pub added_disks: usize,
}

/// A simulated array that serves block requests and can be upgraded online.
pub trait StorageArray {
    /// The allocation policy this array implements.
    fn strategy(&self) -> StrategyKind;

    /// Current number of mechanical disks.
    fn disk_count(&self) -> usize;

    /// Total number of devices (disks + dedicated SSDs).
    fn device_count(&self) -> usize;

    /// Client-visible capacity in blocks (the archive partition's data
    /// capacity).
    fn capacity_blocks(&self) -> u64;

    /// Cache-partition capacity in blocks (0 for the baselines).
    fn pc_capacity_blocks(&self) -> u64;

    /// Serves one client request arriving at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::OutOfRange`] if the request extends beyond the
    /// volume.
    fn submit(
        &mut self,
        now: SimTime,
        kind: IoKind,
        range: BlockRange,
    ) -> Result<RequestReport, CraidError>;

    /// Adds `added_disks` mechanical disks at time `now` and performs the
    /// strategy's upgrade procedure.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidExpansion`] if `added_disks` is zero or
    /// the resulting geometry is unusable for this strategy.
    fn expand(&mut self, now: SimTime, added_disks: usize) -> Result<ExpansionReport, CraidError>;

    /// Switches the I/O monitor's replacement policy at `now`, preserving
    /// the currently cached blocks (a scenario's `PolicySwitch` event).
    /// Baseline arrays have no cache partition, so the default is a no-op.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the array cannot apply the switch.
    fn switch_policy(&mut self, _now: SimTime, _policy: PolicyKind) -> Result<(), CraidError> {
        Ok(())
    }

    /// Marks mechanical disk `disk` as failed at `now` (a scenario's
    /// `DiskFailure` event). Until the disk is repaired, reads that would
    /// touch it are reconstructed from the surviving members of its parity
    /// group and writes aimed at it are absorbed by parity.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidFault`] if `disk` is not a healthy
    /// mechanical disk or another disk is already failed or rebuilding
    /// (single-fault model).
    fn fail_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError>;

    /// Installs a hot spare in failed disk `disk`'s slot at `now` (a
    /// scenario's `DiskRepair` event) and starts the background rebuild,
    /// which streams reconstruction I/O onto the spare interleaved with
    /// client traffic until the device image is restored.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidFault`] unless `disk` is currently
    /// failed.
    fn repair_disk(&mut self, now: SimTime, disk: usize) -> Result<(), CraidError>;

    /// Retargets the array's background-maintenance throttle at `now` (the
    /// QoS controller's output, a fraction of the configured maintenance
    /// rates in `[floor, 1.0]`). A no-op unless the array was built with a
    /// QoS spec (which attaches the throttle to its background engine).
    fn set_background_throttle(&mut self, _now: SimTime, _scale: f64) {}

    /// Drains the deferred expansions that activated since the last call
    /// (in activation order). The simulation driver forwards them to
    /// [`Observer::on_deferred_activation`](crate::observer::Observer::on_deferred_activation).
    fn take_activations(&mut self) -> Vec<ActivatedExpansion> {
        Vec::new()
    }

    /// Runs one catch-up step of the array's background engine at `now`:
    /// if a rebuild or expansion migration is in flight and behind its
    /// pace, one batch of background I/O is issued and its device events
    /// returned. The simulation driver calls this once per client request,
    /// interleaving maintenance with traffic; direct users replaying their
    /// own loops should do the same.
    fn pump_background(&mut self, now: SimTime) -> Vec<DeviceIoEvent>;

    /// Pumps background work, appending the issued device events to `out`
    /// (already cleared by the caller) instead of allocating a fresh vector
    /// — the replay hot loop's variant of [`StorageArray::pump_background`].
    fn pump_background_into(&mut self, now: SimTime, out: &mut Vec<DeviceIoEvent>) {
        out.extend(self.pump_background(now));
    }

    /// True when a background pacing clock says the engine could issue or
    /// retire work at `now` — the gate the replay loop's event-clocked
    /// pumping uses to skip guaranteed-idle pumps. The conservative default
    /// (`true`) keeps the classic once-per-request cadence; arrays that can
    /// compute their next due instant exactly override this. A `true` that
    /// turns out idle costs one no-op poll; returning `false` while work is
    /// due would defer maintenance, so implementations must err early.
    fn background_work_due(&mut self, _now: SimTime) -> bool {
        true
    }

    /// True when no background task (rebuild, migration or archive
    /// restripe) is live and no deferred expansion awaits activation.
    fn background_idle(&self) -> bool;

    /// The earliest simulated instant at which a live background task's
    /// pace alone would complete it, or `None` when idle. The simulation's
    /// end-of-trace drain jumps time here instead of stepping blindly, so
    /// rebuilds and migrations outliving the trace still finish (and MTTR /
    /// upgrade windows stay finite) at their exact paced completion times.
    fn background_drain_eta(&self) -> Option<SimTime>;

    /// Degraded-mode and rebuild counters accumulated so far (all zero if
    /// no disk ever failed).
    fn fault_stats(&self) -> FaultStats;

    /// Online-upgrade migration counters accumulated so far (all zero if
    /// every expansion was instant). `pending_blocks` reflects the moves
    /// still queued at call time.
    fn migration_stats(&self) -> MigrationStats;

    /// Per-device load statistics accumulated so far.
    fn device_stats(&self) -> Vec<DeviceLoadStats>;

    /// The I/O monitor's counters, if this array has one.
    fn monitor_stats(&self) -> Option<MonitorStats>;
}

/// Builds the array described by `config`.
///
/// # Errors
///
/// Returns a [`CraidError`] if the configuration is invalid.
pub fn build_array(config: &ArrayConfig) -> Result<Box<dyn StorageArray>, CraidError> {
    config.validate()?;
    if config.strategy.is_craid() {
        Ok(Box::new(CraidArray::new(config.clone())?))
    } else {
        Ok(Box::new(BaselineArray::new(config.clone())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_array_dispatches_on_strategy() {
        for strategy in StrategyKind::ALL {
            let cfg = ArrayConfig::small_test(strategy, 5_000);
            let array = build_array(&cfg).unwrap();
            assert_eq!(array.strategy(), strategy);
            assert_eq!(array.disk_count(), 8);
            assert!(array.capacity_blocks() >= 5_000);
            if strategy.is_craid() {
                assert!(array.pc_capacity_blocks() > 0);
                assert!(array.monitor_stats().is_some());
            } else {
                assert_eq!(array.pc_capacity_blocks(), 0);
                assert!(array.monitor_stats().is_none());
            }
            if strategy.uses_ssd_cache() {
                assert_eq!(array.device_count(), 8 + 3);
            } else {
                assert_eq!(array.device_count(), 8);
            }
        }
    }

    #[test]
    fn build_array_rejects_invalid_configs() {
        let mut cfg = ArrayConfig::small_test(StrategyKind::Craid5, 5_000);
        cfg.parity_group = 3;
        assert!(build_array(&cfg).is_err());
    }
}
