//! The deferred-expansion activation queue shared by both array types.
//!
//! An `expand` accepted while an archive reshape is in flight *queues*
//! instead of being refused (serialized mdadm-style grows). Both
//! [`CraidArray`](super::CraidArray) and [`BaselineArray`](super::BaselineArray)
//! used to carry their own copy of the queue, the activation records the
//! driver drains, and the eligibility logic — this type is that plumbing,
//! deduplicated. The arrays keep only what genuinely differs between them:
//! which reshape blocks activation and how a commit is performed.

use std::collections::VecDeque;

use craid_simkit::SimTime;

use super::ActivatedExpansion;
use crate::config::ActivationPolicy;

/// Queued deferred expansions (by disk count added) plus the activation
/// records the simulation driver drains via
/// [`StorageArray::take_activations`](super::StorageArray::take_activations).
#[derive(Debug, Default)]
pub(super) struct ActivationQueue {
    /// Expansions accepted while a reshape was in flight, in arrival order;
    /// each activates when the blocking reshape drains — and, under
    /// [`ActivationPolicy::WaitForRepair`], only once the array is healthy.
    deferred: VecDeque<usize>,
    /// Activations since the driver last drained them.
    activations: Vec<ActivatedExpansion>,
}

impl ActivationQueue {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Queues an expansion of `added_disks` behind the in-flight reshape.
    pub(super) fn defer(&mut self, added_disks: usize) {
        self.deferred.push_back(added_disks);
    }

    /// Number of expansions still awaiting activation.
    pub(super) fn len(&self) -> usize {
        self.deferred.len()
    }

    /// Disks every queued expansion will add once it activates — the
    /// projected-geometry term expansion validation checks, so a deferred
    /// expansion can never fail at activation time.
    pub(super) fn pending_disks(&self) -> usize {
        self.deferred.iter().sum()
    }

    /// Pops the next queued expansion if nothing holds it: `blocked` folds
    /// the caller's preconditions (a reshape still in flight; wait-for-repair
    /// on a degraded array). When eligible, the model checker may still hold
    /// it for one more pump
    /// ([`DecisionPoint::ActivationTiming`](crate::choice::DecisionPoint)
    /// branch 1) — the window a real engine thread would leave between
    /// noticing the drain and committing the queued expansion. The caller
    /// commits the layout and then calls [`ActivationQueue::record`].
    pub(super) fn pop_eligible(&mut self, blocked: bool) -> Option<usize> {
        if blocked || self.deferred.is_empty() {
            return None;
        }
        if crate::choice::choose(crate::choice::DecisionPoint::ActivationTiming, 2) == 1 {
            return None;
        }
        self.deferred.pop_front()
    }

    /// Records an activation the caller just committed, for the driver to
    /// drain and forward to
    /// [`Observer::on_deferred_activation`](crate::observer::Observer::on_deferred_activation).
    pub(super) fn record(&mut self, at: SimTime, added_disks: usize) {
        self.activations.push(ActivatedExpansion { at, added_disks });
    }

    /// Drains the activation records accumulated since the last call.
    pub(super) fn take_activations(&mut self) -> Vec<ActivatedExpansion> {
        std::mem::take(&mut self.activations)
    }

    /// True when the end-of-trace drain may treat the queue as settled:
    /// empty, or held by wait-for-repair on a degraded array — only a
    /// `disk-repair` event can unblock that, so the drain must not spin on
    /// it.
    pub(super) fn idle_under(&self, policy: ActivationPolicy, degraded: bool) -> bool {
        self.deferred.is_empty() || (policy == ActivationPolicy::WaitForRepair && degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defer_pop_record_round_trip() {
        let mut q = ActivationQueue::new();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pending_disks(), 0);
        q.defer(4);
        q.defer(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_disks(), 6);
        // Blocked: nothing pops, the queue is untouched.
        assert_eq!(q.pop_eligible(true), None);
        assert_eq!(q.len(), 2);
        // Unblocked: FIFO order.
        assert_eq!(q.pop_eligible(false), Some(4));
        q.record(SimTime::from_secs(7.0), 4);
        assert_eq!(q.pop_eligible(false), Some(2));
        q.record(SimTime::from_secs(7.0), 2);
        assert_eq!(q.pop_eligible(false), None);
        let drained = q.take_activations();
        assert_eq!(
            drained.iter().map(|a| a.added_disks).collect::<Vec<_>>(),
            vec![4, 2]
        );
        assert!(q.take_activations().is_empty(), "drain is destructive");
    }

    #[test]
    fn idle_under_blocks_only_wait_for_repair_on_degraded() {
        let mut q = ActivationQueue::new();
        assert!(q.idle_under(ActivationPolicy::Immediate, false));
        q.defer(2);
        assert!(!q.idle_under(ActivationPolicy::Immediate, false));
        assert!(!q.idle_under(ActivationPolicy::Immediate, true));
        assert!(!q.idle_under(ActivationPolicy::WaitForRepair, false));
        assert!(q.idle_under(ActivationPolicy::WaitForRepair, true));
    }
}
