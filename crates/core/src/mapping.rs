//! The mapping cache (paper §4.2).
//!
//! An in-memory ordered map from archive-partition LBAs to their cached
//! copies in the cache partition, with a dirty flag per entry. Lookups are
//! `O(log k)`; memory is a few bytes per cached block (the paper budgets
//! ≈0.58 % of the cache-partition size, ≈5.9 MB per cached GB).
//!
//! The paper notes that losing the mapping cache can lose data because dirty
//! blocks are updated in place in `PC`; it therefore keeps a persistent log
//! of dirty translations. [`MappingCache::dirty_log`] and
//! [`MappingCache::recover_from_log`] model that: after a crash, dirty
//! entries are recovered from the log and clean entries are simply
//! invalidated.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One translation held by the mapping cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Block number of the cached copy within the cache partition.
    pub pc_block: u64,
    /// True if the cached copy differs from the archive copy.
    pub dirty: bool,
}

/// A persisted dirty-translation record (the failure-resilience log of
/// §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyLogEntry {
    /// Archive-partition LBA of the original block.
    pub pa_block: u64,
    /// Cache-partition block holding the (modified) copy.
    pub pc_block: u64,
}

/// The in-memory translation table `LBA_PA → (LBA_PC, dirty)`.
///
/// # Example
///
/// ```
/// use craid::MappingCache;
///
/// let mut m = MappingCache::new();
/// m.insert(1_000, 0, false);
/// m.mark_dirty(1_000);
/// assert_eq!(m.lookup(1_000).unwrap().pc_block, 0);
/// assert!(m.lookup(1_000).unwrap().dirty);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MappingCache {
    map: BTreeMap<u64, Mapping>,
}

impl MappingCache {
    /// Creates an empty mapping cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the translation for an archive block.
    pub fn lookup(&self, pa_block: u64) -> Option<Mapping> {
        self.map.get(&pa_block).copied()
    }

    /// True if `pa_block` currently has a cached copy.
    pub fn contains(&self, pa_block: u64) -> bool {
        self.map.contains_key(&pa_block)
    }

    /// Inserts (or replaces) the translation for `pa_block`.
    pub fn insert(&mut self, pa_block: u64, pc_block: u64, dirty: bool) {
        self.map.insert(pa_block, Mapping { pc_block, dirty });
    }

    /// Marks the cached copy of `pa_block` as modified. Returns true if the
    /// block was mapped.
    pub fn mark_dirty(&mut self, pa_block: u64) -> bool {
        if let Some(m) = self.map.get_mut(&pa_block) {
            m.dirty = true;
            true
        } else {
            false
        }
    }

    /// Marks the cached copy of `pa_block` as identical to the archive copy
    /// (after a write-back). Returns true if the block was mapped.
    pub fn mark_clean(&mut self, pa_block: u64) -> bool {
        if let Some(m) = self.map.get_mut(&pa_block) {
            m.dirty = false;
            true
        } else {
            false
        }
    }

    /// Removes the translation for `pa_block`, returning it if present.
    pub fn remove(&mut self, pa_block: u64) -> Option<Mapping> {
        self.map.remove(&pa_block)
    }

    /// Removes every translation, returning the former contents (used when
    /// the cache partition is invalidated during an upgrade).
    pub fn drain(&mut self) -> Vec<(u64, Mapping)> {
        let out: Vec<(u64, Mapping)> = self.map.iter().map(|(&k, &v)| (k, v)).collect();
        self.map.clear();
        out
    }

    /// Iterates over all translations in archive-LBA order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Mapping)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// The persistent dirty log: every translation whose cached copy is
    /// modified and would be lost if the mapping cache disappeared.
    pub fn dirty_log(&self) -> Vec<DirtyLogEntry> {
        self.map
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(&pa_block, m)| DirtyLogEntry {
                pa_block,
                pc_block: m.pc_block,
            })
            .collect()
    }

    /// Rebuilds a mapping cache from a persisted dirty log, as after a crash:
    /// only dirty translations survive (clean cached copies are simply
    /// invalidated because the archive still holds identical data).
    pub fn recover_from_log(log: &[DirtyLogEntry]) -> Self {
        let mut map = BTreeMap::new();
        for entry in log {
            map.insert(
                entry.pa_block,
                Mapping {
                    pc_block: entry.pc_block,
                    dirty: true,
                },
            );
        }
        MappingCache { map }
    }

    /// Estimated memory footprint in bytes, following the paper's accounting:
    /// 4 bytes per LBA (two LBAs), one dirty bit and 8 bytes of structure
    /// pointers per entry.
    pub fn estimated_memory_bytes(&self) -> u64 {
        let per_entry = 4 + 4 + 8; // two LBAs + pointers
        let dirty_bits = (self.map.len() as u64).div_ceil(8);
        self.map.len() as u64 * per_entry + dirty_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut m = MappingCache::new();
        assert!(m.is_empty());
        m.insert(100, 0, false);
        m.insert(200, 1, true);
        assert_eq!(m.len(), 2);
        assert!(m.contains(100));
        assert_eq!(
            m.lookup(100),
            Some(Mapping {
                pc_block: 0,
                dirty: false
            })
        );
        assert_eq!(
            m.lookup(200),
            Some(Mapping {
                pc_block: 1,
                dirty: true
            })
        );
        assert_eq!(m.lookup(300), None);
        assert_eq!(
            m.remove(100),
            Some(Mapping {
                pc_block: 0,
                dirty: false
            })
        );
        assert_eq!(m.remove(100), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn dirty_transitions() {
        let mut m = MappingCache::new();
        m.insert(5, 9, false);
        assert!(m.mark_dirty(5));
        assert!(m.lookup(5).unwrap().dirty);
        assert!(m.mark_clean(5));
        assert!(!m.lookup(5).unwrap().dirty);
        assert!(!m.mark_dirty(999), "unknown blocks are not marked");
    }

    #[test]
    fn reinsert_replaces_translation() {
        let mut m = MappingCache::new();
        m.insert(7, 1, true);
        m.insert(7, 42, false);
        assert_eq!(
            m.lookup(7),
            Some(Mapping {
                pc_block: 42,
                dirty: false
            })
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_returns_everything_in_order() {
        let mut m = MappingCache::new();
        m.insert(30, 2, true);
        m.insert(10, 0, false);
        m.insert(20, 1, false);
        let drained = m.drain();
        assert!(m.is_empty());
        assert_eq!(
            drained.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn crash_recovery_keeps_only_dirty_blocks() {
        let mut m = MappingCache::new();
        m.insert(1, 10, false);
        m.insert(2, 11, true);
        m.insert(3, 12, true);
        let log = m.dirty_log();
        assert_eq!(log.len(), 2);
        let recovered = MappingCache::recover_from_log(&log);
        assert_eq!(recovered.len(), 2);
        assert!(!recovered.contains(1), "clean blocks are invalidated");
        assert!(recovered.lookup(2).unwrap().dirty);
        assert_eq!(recovered.lookup(3).unwrap().pc_block, 12);
    }

    #[test]
    fn memory_estimate_matches_paper_scale() {
        // 1 GB of 4 KiB cached blocks = 262 144 entries. The paper budgets
        // ≈5.9 MB per GB of cache partition; our estimate must be in that
        // ballpark (same order, below 8 MB).
        let mut m = MappingCache::new();
        for b in 0..262_144u64 {
            m.insert(b, b, b % 7 == 0);
        }
        let mb = m.estimated_memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb > 3.0 && mb < 8.0, "estimated {mb} MB per cached GB");
    }

    proptest! {
        /// The mapping cache behaves like a map: after a sequence of inserts
        /// and removals, lookups agree with a reference BTreeMap.
        #[test]
        fn prop_behaves_like_reference_map(ops in proptest::collection::vec((0u64..64, 0u64..32, any::<bool>(), any::<bool>()), 1..200)) {
            let mut m = MappingCache::new();
            let mut reference = std::collections::BTreeMap::new();
            for (pa, pc, dirty, remove) in ops {
                if remove {
                    prop_assert_eq!(m.remove(pa).is_some(), reference.remove(&pa).is_some());
                } else {
                    m.insert(pa, pc, dirty);
                    reference.insert(pa, (pc, dirty));
                }
            }
            prop_assert_eq!(m.len(), reference.len());
            for (&pa, &(pc, dirty)) in &reference {
                let got = m.lookup(pa).unwrap();
                prop_assert_eq!(got.pc_block, pc);
                prop_assert_eq!(got.dirty, dirty);
            }
            // The dirty log covers exactly the dirty entries.
            let dirty_count = reference.values().filter(|(_, d)| *d).count();
            prop_assert_eq!(m.dirty_log().len(), dirty_count);
        }
    }
}
