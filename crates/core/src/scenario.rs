//! Declarative experiments: scenarios, event schedules, and campaigns.
//!
//! The paper's evaluation is a matrix of {strategies × workloads ×
//! cache-partition sizes × upgrade schedules}. Instead of every experiment
//! hand-rolling its own sweep loops, this module lets an experiment be
//! *declared as data*:
//!
//! * a [`Scenario`] names a strategy, a workload, an array shape, and an
//!   ordered timeline of [`ScheduledEvent`]s (disk expansions, replacement
//!   policy switches, workload-phase markers, disk failures and repairs);
//! * scenarios serialize to TOML and JSON, so experiments can live in
//!   version-controlled files (see [`Scenario::from_toml`]);
//! * a [`Campaign`] executes many scenarios in parallel — either an
//!   explicit list or a cartesian [`Campaign::sweep`] — and returns one
//!   [`ScenarioOutcome`] per scenario, in input order.
//!
//! Events at equal times apply in declaration order (the schedule is
//! stable-sorted by time), and a scenario is fully determined by its data:
//! the same scenario always produces the identical report.
//!
//! ```
//! use craid::{Scenario, StrategyKind};
//! use craid_cache::PolicyKind;
//! use craid_simkit::SimTime;
//! use craid_trace::WorkloadId;
//!
//! let scenario = Scenario::builder()
//!     .name("wdev upgrade drill")
//!     .strategy(StrategyKind::Craid5Plus)
//!     .workload(WorkloadId::Wdev)
//!     .requests(2_000)
//!     .small_test()
//!     .pc_fraction(0.2)
//!     .expand_at(SimTime::from_secs(900.0), 4)
//!     .switch_policy_at(SimTime::from_secs(1_800.0), PolicyKind::Arc)
//!     .build();
//! let outcome = scenario.run().unwrap();
//! assert_eq!(outcome.expansions.len(), 1);
//! assert!(outcome.report.requests > 0);
//! ```

use serde::{Deserialize, Serialize, Value};

use craid_cache::PolicyKind;
use craid_simkit::SimTime;
use craid_trace::{SyntheticWorkload, Trace, WorkloadId};

use crate::array::ExpansionReport;
use crate::config::{ArrayConfig, StrategyKind};
use crate::error::CraidError;
use crate::observer::{MultiObserver, NullObserver, Observer, ProgressObserver};
use crate::report::SimulationReport;
use crate::sim::Simulation;

/// One entry of a scenario's timeline, applied when the replay clock
/// reaches its time. Events at equal times apply in declaration order.
///
/// The set is open-ended by design; the latest additions are trace-swapping
/// workload phases and paced online expansions.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduledEvent {
    /// An online upgrade: `added_disks` mechanical disks join the array and
    /// the strategy's upgrade procedure runs (CRAID invalidates and
    /// redistributes its cache partition; baselines restripe or aggregate).
    Expand {
        /// When the upgrade starts.
        at: SimTime,
        /// Number of disks added.
        added_disks: usize,
    },
    /// Switches the I/O monitor's replacement policy, preserving the cached
    /// set. A no-op for baseline strategies.
    PolicySwitch {
        /// When the switch happens.
        at: SimTime,
        /// The policy to switch to.
        policy: PolicyKind,
    },
    /// A named workload phase. With a `workload` source attached it has
    /// real trace-swap semantics: the replay truncates at the phase time
    /// and continues with the new workload's records from there. Without
    /// one it is a pure marker — the engine does not act on it, but
    /// observers see it (useful to annotate day boundaries or
    /// "before/after upgrade" windows in streamed output).
    WorkloadPhase {
        /// When the phase starts.
        at: SimTime,
        /// Label observers will see.
        label: String,
        /// The trace segment to switch to, if this phase swaps workloads.
        workload: Option<WorkloadSource>,
    },
    /// A mechanical disk dies. Until its `DiskRepair`, reads that would
    /// touch it are reconstructed from the surviving members of its parity
    /// group (degraded mode) and writes aimed at it are absorbed by parity.
    DiskFailure {
        /// When the disk fails.
        at: SimTime,
        /// Index of the failing mechanical disk.
        disk: usize,
    },
    /// A hot spare replaces a failed disk and the background rebuild starts
    /// streaming reconstruction I/O onto it, interleaved with client
    /// traffic, until the device image is restored.
    DiskRepair {
        /// When the spare is installed.
        at: SimTime,
        /// Index of the disk slot being rebuilt.
        disk: usize,
    },
}

impl ScheduledEvent {
    /// Convenience constructor for [`ScheduledEvent::Expand`].
    pub fn expand(at: SimTime, added_disks: usize) -> Self {
        ScheduledEvent::Expand { at, added_disks }
    }

    /// Convenience constructor for [`ScheduledEvent::PolicySwitch`].
    pub fn policy_switch(at: SimTime, policy: PolicyKind) -> Self {
        ScheduledEvent::PolicySwitch { at, policy }
    }

    /// Convenience constructor for a marker-only
    /// [`ScheduledEvent::WorkloadPhase`].
    pub fn workload_phase(at: SimTime, label: impl Into<String>) -> Self {
        ScheduledEvent::WorkloadPhase {
            at,
            label: label.into(),
            workload: None,
        }
    }

    /// Convenience constructor for a trace-swapping
    /// [`ScheduledEvent::WorkloadPhase`].
    pub fn workload_phase_swap(
        at: SimTime,
        label: impl Into<String>,
        workload: WorkloadSource,
    ) -> Self {
        ScheduledEvent::WorkloadPhase {
            at,
            label: label.into(),
            workload: Some(workload),
        }
    }

    /// Convenience constructor for [`ScheduledEvent::DiskFailure`].
    pub fn disk_failure(at: SimTime, disk: usize) -> Self {
        ScheduledEvent::DiskFailure { at, disk }
    }

    /// Convenience constructor for [`ScheduledEvent::DiskRepair`].
    pub fn disk_repair(at: SimTime, disk: usize) -> Self {
        ScheduledEvent::DiskRepair { at, disk }
    }

    /// The simulated time this event is scheduled for.
    pub fn at(&self) -> SimTime {
        match self {
            ScheduledEvent::Expand { at, .. }
            | ScheduledEvent::PolicySwitch { at, .. }
            | ScheduledEvent::WorkloadPhase { at, .. }
            | ScheduledEvent::DiskFailure { at, .. }
            | ScheduledEvent::DiskRepair { at, .. } => *at,
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            ScheduledEvent::Expand { added_disks, .. } => {
                format!("expand by {added_disks} disks")
            }
            ScheduledEvent::PolicySwitch { policy, .. } => {
                format!("switch policy to {policy}")
            }
            ScheduledEvent::WorkloadPhase {
                label,
                workload: None,
                ..
            } => {
                format!("enter phase '{label}'")
            }
            ScheduledEvent::WorkloadPhase {
                label,
                workload: Some(source),
                ..
            } => {
                format!("enter phase '{label}' (switch trace to {})", source.id)
            }
            ScheduledEvent::DiskFailure { disk, .. } => {
                format!("fail disk {disk}")
            }
            ScheduledEvent::DiskRepair { disk, .. } => {
                format!("repair disk {disk} (hot spare, rebuild starts)")
            }
        }
    }
}

// Events serialize as flat `kind`-tagged maps so TOML timelines read
// naturally:
//
// ```toml
// [[events]]
// kind = "expand"
// at_secs = 120.0
// added_disks = 4
// ```
impl Serialize for ScheduledEvent {
    fn serialize(&self) -> Value {
        let mut entries = Vec::new();
        let kind = match self {
            ScheduledEvent::Expand { .. } => "expand",
            ScheduledEvent::PolicySwitch { .. } => "policy-switch",
            ScheduledEvent::WorkloadPhase { .. } => "workload-phase",
            ScheduledEvent::DiskFailure { .. } => "disk-failure",
            ScheduledEvent::DiskRepair { .. } => "disk-repair",
        };
        entries.push(("kind".to_string(), Value::Str(kind.to_string())));
        entries.push(("at_secs".to_string(), Value::Float(self.at().as_secs())));
        match self {
            ScheduledEvent::Expand { added_disks, .. } => {
                entries.push(("added_disks".to_string(), added_disks.serialize()));
            }
            ScheduledEvent::PolicySwitch { policy, .. } => {
                entries.push(("policy".to_string(), policy.serialize()));
            }
            ScheduledEvent::WorkloadPhase {
                label, workload, ..
            } => {
                entries.push(("label".to_string(), label.serialize()));
                if let Some(source) = workload {
                    // Flat keys so TOML timelines stay readable.
                    entries.push(("workload".to_string(), source.id.serialize()));
                    entries.push(("requests".to_string(), source.requests.serialize()));
                    entries.push(("workload_seed".to_string(), source.seed.serialize()));
                }
            }
            ScheduledEvent::DiskFailure { disk, .. } | ScheduledEvent::DiskRepair { disk, .. } => {
                entries.push(("disk".to_string(), disk.serialize()));
            }
        }
        Value::Map(entries)
    }
}

impl Deserialize for ScheduledEvent {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let kind: String = serde::field(value, "kind")?;
        let at_secs: f64 = serde::field(value, "at_secs")?;
        if !at_secs.is_finite() || at_secs < 0.0 {
            return Err(serde::Error::custom(format!(
                "event time must be finite and non-negative, got {at_secs}"
            )));
        }
        let at = SimTime::from_secs(at_secs);
        match kind.to_ascii_lowercase().replace('_', "-").as_str() {
            "expand" => Ok(ScheduledEvent::Expand {
                at,
                added_disks: serde::field(value, "added_disks")?,
            }),
            "policy-switch" => Ok(ScheduledEvent::PolicySwitch {
                at,
                policy: serde::field(value, "policy")?,
            }),
            "workload-phase" => {
                let id: Option<WorkloadId> = serde::field(value, "workload")?;
                let workload = match id {
                    Some(id) => Some(WorkloadSource {
                        id,
                        requests: serde::field(value, "requests")?,
                        seed: serde::field::<Option<u64>>(value, "workload_seed")?.unwrap_or(0),
                    }),
                    None => None,
                };
                Ok(ScheduledEvent::WorkloadPhase {
                    at,
                    label: serde::field(value, "label")?,
                    workload,
                })
            }
            "disk-failure" => Ok(ScheduledEvent::DiskFailure {
                at,
                disk: serde::field(value, "disk")?,
            }),
            "disk-repair" => Ok(ScheduledEvent::DiskRepair {
                at,
                disk: serde::field(value, "disk")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown event kind '{other}' (expected expand, policy-switch, \
                 workload-phase, disk-failure or disk-repair)"
            ))),
        }
    }
}

/// The synthetic workload a scenario replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSource {
    /// Which of the paper's seven traces to model.
    pub id: WorkloadId,
    /// Target number of client requests the scaled trace is generated with.
    pub requests: u64,
    /// Generation seed; scenarios with equal sources replay byte-identical
    /// workloads.
    pub seed: u64,
}

/// Which base array shape a scenario starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayPreset {
    /// The paper's 50-disk testbed ([`ArrayConfig::paper`]).
    Paper,
    /// The small 8-disk test array ([`ArrayConfig::small_test`]).
    SmallTest,
}

impl ArrayPreset {
    fn name(self) -> &'static str {
        match self {
            ArrayPreset::Paper => "paper",
            ArrayPreset::SmallTest => "small-test",
        }
    }
}

impl Serialize for ArrayPreset {
    fn serialize(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for ArrayPreset {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("preset name", value))?;
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "paper" => Ok(ArrayPreset::Paper),
            "small-test" | "smalltest" | "small" => Ok(ArrayPreset::SmallTest),
            other => Err(serde::Error::custom(format!(
                "unknown array preset '{other}' (expected paper or small-test)"
            ))),
        }
    }
}

/// The array shape a scenario runs against: a preset plus targeted
/// overrides. Everything except `preset` and `pc_fraction` is optional.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArraySpec {
    /// Base shape.
    pub preset: ArrayPreset,
    /// Cache-partition size as a fraction of the workload footprint (the
    /// sweep knob of the paper's Figures 4 and 6). Ignored by baselines.
    pub pc_fraction: f64,
    /// Replacement policy override (default: the preset's WLRU(0.5)).
    pub policy: Option<PolicyKind>,
    /// Initial disk-count override.
    pub disks: Option<usize>,
    /// RAID-5+ aggregation schedule override; must sum to `disks`.
    pub expansion_sets: Option<Vec<usize>>,
    /// Stripe-unit override, in blocks.
    pub stripe_unit: Option<u64>,
    /// Dataset-scatter seed override.
    pub seed: Option<u64>,
    /// Background rebuild pace override, in blocks per simulated second
    /// (how fast a hot spare is filled after a `disk-repair` event).
    pub rebuild_rate: Option<f64>,
    /// Background migration pace for `expand` events, in blocks per
    /// simulated second. Omitted (or `+inf`) keeps upgrades instant.
    pub migration_rate: Option<f64>,
    /// Block-ordering policy for the background engine (`"sequential"` by
    /// default, `"hot-first"` for CRAID's heat-ranked maintenance).
    pub background_priority: Option<crate::background::BackgroundPriority>,
    /// Fair-share weight of rebuild tasks on the background engine
    /// (default 1.0; see [`ArrayConfig::rebuild_share`]).
    pub rebuild_share: Option<f64>,
    /// Fair-share weight of migration and archive-restripe tasks on the
    /// background engine (default 1.0; see [`ArrayConfig::migration_share`]).
    pub migration_share: Option<f64>,
    /// Service-level objective for the QoS control subsystem (the
    /// `[array.qos]` table). When set, background maintenance is
    /// adaptively throttled between the spec's floor and the configured
    /// rates; omitted keeps the static pacing (see [`ArrayConfig::qos`]).
    pub qos: Option<crate::qos::SloSpec>,
    /// Deferred-expansion activation policy override (`"immediate"` by
    /// default; `"wait-for-repair"` holds queued activations until the
    /// array is healthy — see [`ArrayConfig::activation`]).
    pub activation: Option<crate::config::ActivationPolicy>,
}

impl ArraySpec {
    /// The preset with a given cache-partition fraction and no overrides.
    pub fn preset(preset: ArrayPreset, pc_fraction: f64) -> Self {
        ArraySpec {
            preset,
            pc_fraction,
            policy: None,
            disks: None,
            expansion_sets: None,
            stripe_unit: None,
            seed: None,
            rebuild_rate: None,
            migration_rate: None,
            background_priority: None,
            rebuild_share: None,
            migration_share: None,
            qos: None,
            activation: None,
        }
    }
}

/// A serializable observer attachment. Specs construct their observer at
/// run time; programmatic observers can additionally be passed to
/// [`Scenario::run_observed`].
#[derive(Debug, Clone, PartialEq)]
pub enum ObserverSpec {
    /// Print a progress line to stderr every `every` requests, plus every
    /// applied event.
    Progress {
        /// Requests between progress lines.
        every: u64,
    },
    /// Print only applied events to stderr.
    EventTrace,
}

impl Serialize for ObserverSpec {
    fn serialize(&self) -> Value {
        match self {
            ObserverSpec::Progress { every } => Value::Map(vec![
                ("kind".to_string(), Value::Str("progress".to_string())),
                ("every".to_string(), every.serialize()),
            ]),
            ObserverSpec::EventTrace => Value::Map(vec![(
                "kind".to_string(),
                Value::Str("event-trace".to_string()),
            )]),
        }
    }
}

impl Deserialize for ObserverSpec {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let kind: String = serde::field(value, "kind")?;
        match kind.to_ascii_lowercase().replace('_', "-").as_str() {
            "progress" => Ok(ObserverSpec::Progress {
                every: serde::field(value, "every")?,
            }),
            "event-trace" => Ok(ObserverSpec::EventTrace),
            other => Err(serde::Error::custom(format!(
                "unknown observer kind '{other}' (expected progress or event-trace)"
            ))),
        }
    }
}

/// One declarative experiment: strategy + workload + array + timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name (sweeps generate `workload/strategy/pcX` names).
    pub name: String,
    /// Allocation strategy under test.
    pub strategy: StrategyKind,
    /// Workload to replay.
    pub workload: WorkloadSource,
    /// Array shape.
    pub array: ArraySpec,
    /// Timeline of scheduled events. Stable-sorted by time before the run,
    /// so entries at equal times apply in declaration order.
    pub events: Vec<ScheduledEvent>,
    /// Observers attached at run time.
    pub observers: Vec<ObserverSpec>,
}

impl Scenario {
    /// Starts a fluent builder with the defaults of
    /// [`ScenarioBuilder::new`].
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Parses a scenario from a TOML document.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed TOML or an invalid scenario shape.
    pub fn from_toml(text: &str) -> Result<Scenario, serde::Error> {
        toml::from_str(text)
    }

    /// Renders the scenario as a TOML document.
    ///
    /// # Errors
    ///
    /// Never fails for scenarios constructed through the public API; the
    /// `Result` mirrors the serializer's signature.
    pub fn to_toml(&self) -> Result<String, serde::Error> {
        toml::to_string(self)
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or an invalid scenario shape.
    pub fn from_json(text: &str) -> Result<Scenario, serde::Error> {
        serde_json::from_str(text)
    }

    /// Renders the scenario as pretty JSON.
    ///
    /// # Errors
    ///
    /// Never fails for scenarios constructed through the public API; the
    /// `Result` mirrors the serializer's signature.
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Reads and parses a scenario file (TOML), then rejects it if the
    /// static analyser finds any error-severity diagnostic. Warnings
    /// pass (warn-by-default); call [`Scenario::analyze`] to inspect
    /// them, or use the analysis' deny mode to refuse them too.
    ///
    /// # Errors
    ///
    /// [`CraidError::Io`] when the file cannot be read,
    /// [`CraidError::Parse`] on malformed TOML, and the first analyser
    /// error ([`CraidError::InvalidConfig`] /
    /// [`CraidError::InvalidSchedule`]) otherwise.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, CraidError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CraidError::Io(format!("{}: {e}", path.display())))?;
        let scenario = Scenario::from_toml(&text)
            .map_err(|e| CraidError::Parse(format!("{}: {e}", path.display())))?;
        scenario.analyze().into_result()?;
        Ok(scenario)
    }

    /// Runs the full static analysis — storage-graph rules over the
    /// resolved config, symbolic timeline interpretation of the event
    /// schedule, and the scenario-surface checks — without generating a
    /// trace or simulating any I/O. See [`crate::analyze`].
    pub fn analyze(&self) -> crate::analyze::Analysis {
        crate::analyze::analyze_scenario(self)
    }

    /// Model-checks the scenario's small-scope projection: explores the
    /// scheduler's decision space at `scope` and judges every interleaving
    /// against the invariant oracles. See [`crate::analyze::explore`].
    pub fn explore(&self, scope: &crate::analyze::explore::ExploreScope) -> crate::Exploration {
        crate::analyze::explore::explore(self, scope)
    }

    /// Generates the scenario's trace.
    pub fn trace(&self) -> Trace {
        SyntheticWorkload::paper_scaled_to(self.workload.id, self.workload.requests)
            .generate(self.workload.seed)
    }

    /// The workload footprint the generated trace will have, resolved
    /// statically from the scaling formulas (no generation).
    ///
    /// # Panics
    ///
    /// Panics when `workload.requests` is zero (the analyser reports
    /// that as `CRAID-E131` before ever calling this).
    pub fn static_footprint_blocks(&self) -> u64 {
        SyntheticWorkload::paper_scaled_to(self.workload.id, self.workload.requests)
            .scaled_footprint_blocks()
    }

    /// The replay duration the generated trace is scheduled for, in
    /// simulated seconds, resolved statically (no generation).
    ///
    /// # Panics
    ///
    /// Panics when `workload.requests` is zero (the analyser reports
    /// that as `CRAID-E131` before ever calling this).
    pub fn static_duration_secs(&self) -> f64 {
        SyntheticWorkload::paper_scaled_to(self.workload.id, self.workload.requests)
            .scaled_duration_secs()
    }

    /// Resolves the concrete [`ArrayConfig`] for a generated trace.
    pub fn array_config(&self, trace: &Trace) -> ArrayConfig {
        self.array_config_for_footprint(trace.footprint_blocks())
    }

    /// Resolves the concrete [`ArrayConfig`] for a given workload
    /// footprint. [`Scenario::array_config`] uses the generated trace's
    /// footprint; the static analyser passes
    /// [`Scenario::static_footprint_blocks`] — the same number, without
    /// generating anything.
    pub fn array_config_for_footprint(&self, footprint: u64) -> ArrayConfig {
        let pc_blocks = ((footprint as f64 * self.array.pc_fraction) as u64).max(64);
        let mut config = match self.array.preset {
            ArrayPreset::Paper => ArrayConfig::paper(self.strategy, footprint, pc_blocks),
            ArrayPreset::SmallTest => {
                ArrayConfig::small_test(self.strategy, footprint).with_pc_capacity(pc_blocks)
            }
        };
        if let Some(policy) = self.array.policy {
            config.policy = policy;
        }
        if let Some(disks) = self.array.disks {
            config.disks = disks;
        }
        if let Some(sets) = &self.array.expansion_sets {
            config.expansion_sets = sets.clone();
        }
        if let Some(unit) = self.array.stripe_unit {
            config.stripe_unit = unit;
        }
        if let Some(seed) = self.array.seed {
            config.seed = seed;
        }
        if let Some(rate) = self.array.rebuild_rate {
            config.rebuild_rate_blocks_per_sec = rate;
        }
        if let Some(rate) = self.array.migration_rate {
            config.migration_rate_blocks_per_sec = Some(rate);
        }
        if let Some(priority) = self.array.background_priority {
            config.background_priority = priority;
        }
        if let Some(share) = self.array.rebuild_share {
            config.rebuild_share = share;
        }
        if let Some(share) = self.array.migration_share {
            config.migration_share = share;
        }
        if let Some(spec) = &self.array.qos {
            config.qos = Some(spec.clone());
        }
        if let Some(policy) = self.array.activation {
            config.activation = policy;
        }
        config
    }

    /// Validates the scenario's own knobs (the resolved [`ArrayConfig`] is
    /// additionally validated when the run builds the array). For the
    /// full pre-run static analysis — every configuration finding plus
    /// the symbolic timeline checks — use [`Scenario::analyze`].
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidConfig`] carrying the first violated
    /// constraint's [`crate::analyze::Diagnostic`].
    pub fn validate(&self) -> Result<(), CraidError> {
        let fraction = self.array.pc_fraction;
        if !fraction.is_finite() || fraction <= 0.0 {
            return Err(CraidError::InvalidConfig(
                crate::analyze::Diagnostic::error(
                    crate::analyze::codes::PC_FRACTION,
                    "array.pc_fraction",
                    format!(
                        "scenario '{}': pc_fraction must be finite and positive, got {fraction}",
                        self.name
                    ),
                ),
            ));
        }
        if self.workload.requests == 0 {
            return Err(CraidError::InvalidConfig(
                crate::analyze::Diagnostic::error(
                    crate::analyze::codes::EMPTY_WORKLOAD,
                    "workload.requests",
                    format!(
                        "scenario '{}': workload needs at least one request",
                        self.name
                    ),
                ),
            ));
        }
        Ok(())
    }

    /// Runs the scenario with its declared observers.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run(&self) -> Result<ScenarioOutcome, CraidError> {
        self.run_observed(&mut NullObserver)
    }

    /// Runs the scenario with its declared observers plus `extra`.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_observed(&self, extra: &mut dyn Observer) -> Result<ScenarioOutcome, CraidError> {
        self.validate()?; // before trace generation, which asserts on its inputs
        self.run_on(&self.trace(), extra)
    }

    /// Runs the scenario against a caller-supplied trace (normally the one
    /// [`Scenario::trace`] generates — [`Campaign::run`] uses this to
    /// generate each distinct workload once and share it across the sweep).
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_on(
        &self,
        trace: &Trace,
        extra: &mut dyn Observer,
    ) -> Result<ScenarioOutcome, CraidError> {
        self.run_on_sharded(trace, extra, 1)
    }

    /// Runs the scenario with its device-metrics pipeline sharded across
    /// `threads` worker threads ([`Simulation::try_run_events_sharded`]).
    /// The outcome — including every floating-point metric — is
    /// bit-identical to the single-threaded run; `threads <= 1` stays on
    /// the inline path.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_sharded(&self, threads: usize) -> Result<ScenarioOutcome, CraidError> {
        self.run_sharded_observed(threads, &mut NullObserver)
    }

    /// [`Scenario::run_sharded`] with an extra observer attached.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_sharded_observed(
        &self,
        threads: usize,
        extra: &mut dyn Observer,
    ) -> Result<ScenarioOutcome, CraidError> {
        self.validate()?; // before trace generation, which asserts on its inputs
        self.run_on_sharded(&self.trace(), extra, threads)
    }

    /// [`Scenario::run_on`] with a sharded device-metrics pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_on_sharded(
        &self,
        trace: &Trace,
        extra: &mut dyn Observer,
        threads: usize,
    ) -> Result<ScenarioOutcome, CraidError> {
        // The validation funnel: every execution path ends here. The extra
        // `validate` calls in `run_observed` and `Campaign::run` exist only
        // to guard trace *generation*, which asserts on its inputs.
        self.validate()?;
        let config = self.array_config(trace);
        let mut declared = self.build_observers();
        let mut observers = PairObserver {
            first: &mut declared,
            second: extra,
        };
        let (report, expansions, applied_events) = Simulation::new(config).try_run_events_sharded(
            trace,
            &self.events,
            &mut observers,
            threads,
        )?;
        Ok(ScenarioOutcome {
            name: self.name.clone(),
            strategy: self.strategy,
            workload: self.workload.id,
            pc_fraction: self.array.pc_fraction,
            report,
            expansions,
            applied_events,
        })
    }

    /// Runs the scenario with a [`craid_obs::Tracer`] installed, returning
    /// the outcome together with the captured trace. `capacity` bounds the
    /// tracer's ring buffer (events beyond it are counted as dropped, never
    /// reallocated); `threads` shards the device-metrics pipeline as in
    /// [`Scenario::run_sharded`]. The outcome's report carries an
    /// [`craid_obs::ObsSnapshot`] in its `obs` field; everything else is
    /// bit-identical to an untraced run because tracing only *records* —
    /// it never feeds back into simulated behaviour.
    ///
    /// ```no_run
    /// use craid::ScenarioBuilder;
    ///
    /// let scenario = ScenarioBuilder::new().name("traced").build();
    /// let (outcome, trace) = scenario.run_traced(1 << 16, 1).unwrap();
    /// std::fs::write("trace.json", trace.to_chrome_json()).unwrap();
    /// assert!(outcome.report.obs.is_some());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the resolved configuration or an event
    /// is invalid.
    pub fn run_traced(
        &self,
        capacity: usize,
        threads: usize,
    ) -> Result<(ScenarioOutcome, craid_obs::Trace), CraidError> {
        self.validate()?; // before trace generation, which asserts on its inputs
        let trace = self.trace();
        let (outcome, mut obs_trace) =
            craid_obs::with_tracer(craid_obs::Tracer::with_capacity(capacity), || {
                self.run_on_sharded(&trace, &mut NullObserver, threads)
            });
        let mut outcome = outcome?;
        outcome.report.obs = Some(obs_trace.snapshot());
        Ok((outcome, obs_trace))
    }

    /// Instantiates the declared [`ObserverSpec`]s.
    pub fn build_observers(&self) -> MultiObserver {
        let mut multi = MultiObserver::new();
        for spec in &self.observers {
            match spec {
                ObserverSpec::Progress { every } => {
                    multi.push(Box::new(ProgressObserver::new(&self.name, *every)));
                }
                ObserverSpec::EventTrace => {
                    multi.push(Box::new(ProgressObserver::new(&self.name, 0)));
                }
            }
        }
        multi
    }
}

/// Forwards to two observers without boxing either.
struct PairObserver<'a> {
    first: &'a mut dyn Observer,
    second: &'a mut dyn Observer,
}

impl Observer for PairObserver<'_> {
    fn on_start(&mut self, config: &ArrayConfig, trace: &Trace) {
        self.first.on_start(config, trace);
        self.second.on_start(config, trace);
    }

    fn on_request(
        &mut self,
        record: &craid_trace::TraceRecord,
        outcome: &crate::observer::RequestOutcome,
    ) {
        self.first.on_request(record, outcome);
        self.second.on_request(record, outcome);
    }

    fn on_event(&mut self, event: &ScheduledEvent, expansion: Option<&ExpansionReport>) {
        self.first.on_event(event, expansion);
        self.second.on_event(event, expansion);
    }

    fn on_throttle(&mut self, now: SimTime, scale: f64) {
        self.first.on_throttle(now, scale);
        self.second.on_throttle(now, scale);
    }

    fn on_deferred_activation(&mut self, at: SimTime, added_disks: usize) {
        self.first.on_deferred_activation(at, added_disks);
        self.second.on_deferred_activation(at, added_disks);
    }

    fn on_span(&mut self, event: &craid_obs::TraceEvent) {
        self.first.on_span(event);
        self.second.on_span(event);
    }

    fn on_finish(&mut self, report: &SimulationReport) {
        self.first.on_finish(report);
        self.second.on_finish(report);
    }
}

/// Fluent construction of a [`Scenario`].
///
/// Defaults: wdev workload, 5 000 requests, seed 20140217, the paper
/// preset, a 10 % cache partition, CRAID-5, no events.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Creates a builder with the documented defaults.
    pub fn new() -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                name: "unnamed".to_string(),
                strategy: StrategyKind::Craid5,
                workload: WorkloadSource {
                    id: WorkloadId::Wdev,
                    requests: 5_000,
                    seed: 20_140_217,
                },
                array: ArraySpec::preset(ArrayPreset::Paper, 0.1),
                events: Vec::new(),
                observers: Vec::new(),
            },
        }
    }

    /// Sets the display name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.scenario.name = name.into();
        self
    }

    /// Sets the strategy under test.
    #[must_use]
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.scenario.strategy = strategy;
        self
    }

    /// Sets the workload to replay.
    #[must_use]
    pub fn workload(mut self, id: WorkloadId) -> Self {
        self.scenario.workload.id = id;
        self
    }

    /// Sets the scaled request count.
    #[must_use]
    pub fn requests(mut self, requests: u64) -> Self {
        self.scenario.workload.requests = requests;
        self
    }

    /// Sets the workload generation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.workload.seed = seed;
        self
    }

    /// Uses the paper's 50-disk testbed shape.
    #[must_use]
    pub fn paper(mut self) -> Self {
        self.scenario.array.preset = ArrayPreset::Paper;
        self
    }

    /// Uses the small 8-disk test array.
    #[must_use]
    pub fn small_test(mut self) -> Self {
        self.scenario.array.preset = ArrayPreset::SmallTest;
        self
    }

    /// Sets the cache partition as a fraction of the workload footprint.
    #[must_use]
    pub fn pc_fraction(mut self, fraction: f64) -> Self {
        self.scenario.array.pc_fraction = fraction;
        self
    }

    /// Overrides the replacement policy.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.scenario.array.policy = Some(policy);
        self
    }

    /// Overrides the initial disk count.
    #[must_use]
    pub fn disks(mut self, disks: usize) -> Self {
        self.scenario.array.disks = Some(disks);
        self
    }

    /// Overrides the RAID-5+ aggregation schedule.
    #[must_use]
    pub fn expansion_sets(mut self, sets: Vec<usize>) -> Self {
        self.scenario.array.expansion_sets = Some(sets);
        self
    }

    /// Overrides the stripe unit (in blocks).
    #[must_use]
    pub fn stripe_unit(mut self, blocks: u64) -> Self {
        self.scenario.array.stripe_unit = Some(blocks);
        self
    }

    /// Overrides the background rebuild pace (blocks per simulated second).
    #[must_use]
    pub fn rebuild_rate(mut self, blocks_per_sec: f64) -> Self {
        self.scenario.array.rebuild_rate = Some(blocks_per_sec);
        self
    }

    /// Paces `expand` events at this migration rate (blocks per simulated
    /// second) instead of migrating instantly.
    #[must_use]
    pub fn migration_rate(mut self, blocks_per_sec: f64) -> Self {
        self.scenario.array.migration_rate = Some(blocks_per_sec);
        self
    }

    /// Sets the background engine's block-ordering policy.
    #[must_use]
    pub fn background_priority(mut self, priority: crate::background::BackgroundPriority) -> Self {
        self.scenario.array.background_priority = Some(priority);
        self
    }

    /// Overrides the background engine's fair-share weight for rebuilds.
    #[must_use]
    pub fn rebuild_share(mut self, share: f64) -> Self {
        self.scenario.array.rebuild_share = Some(share);
        self
    }

    /// Overrides the background engine's fair-share weight for migrations
    /// and archive restripes.
    #[must_use]
    pub fn migration_share(mut self, share: f64) -> Self {
        self.scenario.array.migration_share = Some(share);
        self
    }

    /// Attaches a QoS service-level objective: background maintenance is
    /// adaptively throttled between the spec's floor and the configured
    /// rates while client service quality demands it.
    #[must_use]
    pub fn qos(mut self, spec: crate::qos::SloSpec) -> Self {
        self.scenario.array.qos = Some(spec);
        self
    }

    /// Overrides the deferred-expansion activation policy.
    #[must_use]
    pub fn activation(mut self, policy: crate::config::ActivationPolicy) -> Self {
        self.scenario.array.activation = Some(policy);
        self
    }

    /// Schedules an online upgrade.
    #[must_use]
    pub fn expand_at(mut self, at: SimTime, added_disks: usize) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::expand(at, added_disks));
        self
    }

    /// Schedules a replacement-policy switch.
    #[must_use]
    pub fn switch_policy_at(mut self, at: SimTime, policy: PolicyKind) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::policy_switch(at, policy));
        self
    }

    /// Schedules a workload-phase marker.
    #[must_use]
    pub fn phase_at(mut self, at: SimTime, label: impl Into<String>) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::workload_phase(at, label));
        self
    }

    /// Schedules a trace-swapping workload phase: from `at` on, the replay
    /// continues with the given workload's records.
    #[must_use]
    pub fn phase_swap_at(
        mut self,
        at: SimTime,
        label: impl Into<String>,
        workload: WorkloadSource,
    ) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::workload_phase_swap(at, label, workload));
        self
    }

    /// Schedules a disk failure (degraded mode starts).
    #[must_use]
    pub fn fail_disk_at(mut self, at: SimTime, disk: usize) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::disk_failure(at, disk));
        self
    }

    /// Schedules a disk repair (hot spare installed, rebuild starts).
    #[must_use]
    pub fn repair_disk_at(mut self, at: SimTime, disk: usize) -> Self {
        self.scenario
            .events
            .push(ScheduledEvent::disk_repair(at, disk));
        self
    }

    /// Appends an arbitrary event.
    #[must_use]
    pub fn event(mut self, event: ScheduledEvent) -> Self {
        self.scenario.events.push(event);
        self
    }

    /// Attaches a serializable observer.
    #[must_use]
    pub fn observe(mut self, spec: ObserverSpec) -> Self {
        self.scenario.observers.push(spec);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new()
    }
}

/// One event the engine applied, in application order.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedEvent {
    /// The scheduled time.
    pub at: SimTime,
    /// Human-readable description ([`ScheduledEvent::describe`]).
    pub description: String,
    /// False for events applied after the last trace record (they execute,
    /// but outside the measurement window).
    pub during_replay: bool,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub name: String,
    /// The strategy that ran.
    pub strategy: StrategyKind,
    /// The workload that was replayed.
    pub workload: WorkloadId,
    /// The cache-partition fraction the array was sized with.
    pub pc_fraction: f64,
    /// The full measurement report.
    pub report: SimulationReport,
    /// One report per applied expansion, in application order.
    pub expansions: Vec<ExpansionReport>,
    /// Every applied event, in application order.
    pub applied_events: Vec<AppliedEvent>,
}

/// A set of scenarios executed together.
#[derive(Debug, Clone)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
    threads: Option<usize>,
}

impl Campaign {
    /// A campaign over an explicit scenario list.
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        Campaign {
            scenarios,
            threads: None,
        }
    }

    /// The cartesian sweep {workloads × pc_fractions × strategies} around a
    /// base scenario (everything else — requests, seeds, overrides, events
    /// — is taken from `base`).
    ///
    /// Outcome order is workload-major, then fraction, then strategy:
    /// index `((w * fractions.len()) + f) * strategies.len() + s`.
    pub fn sweep(
        base: &Scenario,
        workloads: &[WorkloadId],
        pc_fractions: &[f64],
        strategies: &[StrategyKind],
    ) -> Campaign {
        let mut scenarios =
            Vec::with_capacity(workloads.len() * pc_fractions.len() * strategies.len());
        for &workload in workloads {
            for &fraction in pc_fractions {
                for &strategy in strategies {
                    let mut scenario = base.clone();
                    scenario.name = format!("{workload}/{strategy}/pc{fraction}");
                    scenario.workload.id = workload;
                    scenario.array.pc_fraction = fraction;
                    scenario.strategy = strategy;
                    scenarios.push(scenario);
                }
            }
        }
        Campaign::new(scenarios)
    }

    /// Caps the worker-thread count (default: available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The scenarios in execution order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True if the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Statically analyses every scenario ([`Scenario::analyze`]), in
    /// input order, without running anything. Campaign CI gates use
    /// this warn-by-default (`analysis.into_result()`) or in deny mode
    /// (`analysis.into_deny_result()`, warnings refused too) before
    /// spending any simulation time.
    pub fn analyze(&self) -> Vec<crate::analyze::Analysis> {
        self.scenarios.iter().map(Scenario::analyze).collect()
    }

    /// Runs every scenario in parallel and returns the outcomes in input
    /// order. Each distinct workload source (id, request count, seed) is
    /// generated once and shared across the sweep.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error in input order; the remaining
    /// scenarios still run to completion.
    pub fn run(&self) -> Result<Vec<ScenarioOutcome>, CraidError> {
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(self.scenarios.len().max(1));

        // Generate each distinct trace once; a 7-workload × 4-fraction ×
        // 4-strategy sweep replays 7 traces, not 112. Invalid scenarios are
        // skipped here — their `run_on` below reports the validation error.
        let mut traces: Vec<(&WorkloadSource, Trace)> = Vec::new();
        for scenario in &self.scenarios {
            if scenario.validate().is_ok()
                && !traces.iter().any(|(src, _)| **src == scenario.workload)
            {
                traces.push((&scenario.workload, scenario.trace()));
            }
        }
        let trace_for = |scenario: &Scenario| -> &Trace {
            traces
                .iter()
                .find(|(src, _)| **src == scenario.workload)
                .map(|(_, t)| t)
                .expect("every scenario's trace was pre-generated")
        };

        // Work-stealing dispatch: workers claim the next unstarted scenario
        // from a shared atomic counter, so one long-running configuration
        // (a paced restripe, a large trace) no longer parks the rest of its
        // static chunk behind it while other workers sit idle. Results
        // travel back tagged with their input index, keeping the outcome
        // order deterministic regardless of which worker finished when.
        let mut results: Vec<Option<Result<ScenarioOutcome, CraidError>>> =
            self.scenarios.iter().map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (sender, receiver) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let sender = sender.clone();
                let next = &next;
                let trace_for = &trace_for;
                let scenarios = &self.scenarios;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(index) else {
                        break;
                    };
                    let result = match scenario.validate() {
                        Ok(()) => scenario.run_on(trace_for(scenario), &mut NullObserver),
                        Err(e) => Err(e),
                    };
                    if sender.send((index, result)).is_err() {
                        break;
                    }
                });
            }
            drop(sender);
            for (index, result) in receiver {
                results[index] = Some(result);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every scenario slot was filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::builder()
            .name("tiny")
            .strategy(StrategyKind::Craid5)
            .workload(WorkloadId::Wdev)
            .requests(400)
            .seed(3)
            .small_test()
            .pc_fraction(0.2)
            .build()
    }

    /// Records which hooks fired, for the PairObserver forwarding tests.
    #[derive(Default)]
    struct Counting {
        throttles: u64,
        activations: u64,
        spans: u64,
    }

    impl Observer for Counting {
        fn on_throttle(&mut self, _now: SimTime, _scale: f64) {
            self.throttles += 1;
        }

        fn on_deferred_activation(&mut self, _at: SimTime, _added_disks: usize) {
            self.activations += 1;
        }

        fn on_span(&mut self, _event: &craid_obs::TraceEvent) {
            self.spans += 1;
        }
    }

    #[test]
    fn pair_observer_forwards_every_hook_to_both_sides() {
        let mut a = Counting::default();
        let mut b = Counting::default();
        {
            let mut pair = PairObserver {
                first: &mut a,
                second: &mut b,
            };
            pair.on_throttle(SimTime::from_secs(1.0), 0.5);
            pair.on_deferred_activation(SimTime::from_secs(2.0), 4);
            pair.on_span(&craid_obs::TraceEvent::instant(
                craid_obs::SpanCategory::Request,
                "read",
                SimTime::ZERO,
            ));
        }
        for side in [&a, &b] {
            assert_eq!(side.throttles, 1);
            assert_eq!(side.activations, 1);
            assert_eq!(side.spans, 1);
        }
    }

    #[test]
    fn run_traced_attaches_snapshot_and_captures_request_spans() {
        let (outcome, trace) = tiny().run_traced(1 << 16, 1).unwrap();
        let obs = outcome.report.obs.as_ref().expect("traced run sets obs");
        let requests = outcome.report.requests;
        assert_eq!(obs.metrics.counters.get("requests"), Some(&requests));
        assert_eq!(obs.spans.get("request"), Some(&requests));
        assert_eq!(obs.recorded, trace.events.len() as u64);
        assert_eq!(obs.dropped, 0);
        // The same scenario untraced leaves the field unset.
        let untraced = tiny().run().unwrap();
        assert!(untraced.report.obs.is_none());
    }

    #[test]
    fn builder_sets_every_field() {
        let s = Scenario::builder()
            .name("full")
            .strategy(StrategyKind::Craid5PlusSsd)
            .workload(WorkloadId::Proj)
            .requests(123)
            .seed(9)
            .small_test()
            .pc_fraction(0.05)
            .policy(PolicyKind::Arc)
            .disks(4)
            .expansion_sets(vec![4])
            .stripe_unit(8)
            .rebuild_rate(5_000.0)
            .migration_rate(750.0)
            .background_priority(crate::background::BackgroundPriority::HotFirst)
            .expand_at(SimTime::from_secs(10.0), 2)
            .switch_policy_at(SimTime::from_secs(20.0), PolicyKind::Lru)
            .phase_at(SimTime::from_secs(30.0), "late")
            .fail_disk_at(SimTime::from_secs(40.0), 2)
            .repair_disk_at(SimTime::from_secs(50.0), 2)
            .phase_swap_at(
                SimTime::from_secs(60.0),
                "night shift",
                WorkloadSource {
                    id: WorkloadId::Proj,
                    requests: 250,
                    seed: 5,
                },
            )
            .observe(ObserverSpec::EventTrace)
            .build();
        assert_eq!(s.name, "full");
        assert_eq!(s.strategy, StrategyKind::Craid5PlusSsd);
        assert_eq!(s.workload.id, WorkloadId::Proj);
        assert_eq!(s.workload.requests, 123);
        assert_eq!(s.workload.seed, 9);
        assert_eq!(s.array.preset, ArrayPreset::SmallTest);
        assert_eq!(s.array.pc_fraction, 0.05);
        assert_eq!(s.array.policy, Some(PolicyKind::Arc));
        assert_eq!(s.array.disks, Some(4));
        assert_eq!(s.array.rebuild_rate, Some(5_000.0));
        assert_eq!(s.array.migration_rate, Some(750.0));
        assert_eq!(
            s.array.background_priority,
            Some(crate::background::BackgroundPriority::HotFirst)
        );
        assert_eq!(s.events.len(), 6);
        assert_eq!(
            s.events[3],
            ScheduledEvent::disk_failure(SimTime::from_secs(40.0), 2)
        );
        assert_eq!(
            s.events[4],
            ScheduledEvent::disk_repair(SimTime::from_secs(50.0), 2)
        );
        let ScheduledEvent::WorkloadPhase {
            workload: Some(source),
            ..
        } = &s.events[5]
        else {
            panic!("the sixth event swaps the trace");
        };
        assert_eq!(source.id, WorkloadId::Proj);
        assert_eq!(s.observers.len(), 1);
    }

    #[test]
    fn scenario_round_trips_through_toml_and_json() {
        let s = tiny()
            .clone()
            .builder_like()
            .expand_at(SimTime::from_secs(100.0), 4)
            .expand_at(SimTime::from_secs(200.0), 2)
            .switch_policy_at(SimTime::from_secs(150.0), PolicyKind::Wlru(0.5))
            .phase_at(SimTime::from_secs(50.0), "warmup done")
            .phase_swap_at(
                SimTime::from_secs(70.0),
                "new tenants",
                WorkloadSource {
                    id: WorkloadId::Webusers,
                    requests: 120,
                    seed: 9,
                },
            )
            .fail_disk_at(SimTime::from_secs(60.0), 3)
            .repair_disk_at(SimTime::from_secs(80.0), 3)
            .migration_rate(640.0)
            .background_priority(crate::background::BackgroundPriority::HotFirst)
            .rebuild_share(2.0)
            .migration_share(0.25)
            .qos(crate::qos::SloSpec::latency_target(30.0).with_floor(0.2))
            .activation(crate::config::ActivationPolicy::WaitForRepair)
            .observe(ObserverSpec::Progress { every: 100 })
            .build();

        let toml_text = s.to_toml().unwrap();
        let from_toml = Scenario::from_toml(&toml_text).unwrap();
        assert_eq!(from_toml, s, "TOML round trip:\n{toml_text}");

        let json_text = s.to_json().unwrap();
        let from_json = Scenario::from_json(&json_text).unwrap();
        assert_eq!(from_json, s, "JSON round trip:\n{json_text}");
    }

    #[test]
    fn handwritten_toml_parses() {
        let text = r#"
            name = "hand written"
            strategy = "CRAID-5+"

            [workload]
            id = "webusers"
            requests = 500
            seed = 11

            [array]
            preset = "small-test"
            pc_fraction = 0.2
            disks = 4
            expansion_sets = [4]
            activation = "wait-for-repair"

            [array.qos]
            target_latency_ms = 25.0
            floor = 0.15

            [[events]]
            kind = "expand"
            at_secs = 120.0
            added_disks = 4

            [[events]]
            kind = "policy-switch"
            at_secs = 240.0
            policy = "ARC"

            [[events]]
            kind = "disk-failure"
            at_secs = 300.0
            disk = 2

            [[events]]
            kind = "disk-repair"
            at_secs = 360.0
            disk = 2

            [[events]]
            kind = "workload-phase"
            at_secs = 400.0
            label = "night batch"
            workload = "proj"
            requests = 200
        "#;
        let s = Scenario::from_toml(text).unwrap();
        assert_eq!(s.strategy, StrategyKind::Craid5Plus);
        assert_eq!(s.workload.id, WorkloadId::Webusers);
        assert_eq!(s.array.disks, Some(4));
        assert_eq!(
            s.array.activation,
            Some(crate::config::ActivationPolicy::WaitForRepair)
        );
        let qos = s.array.qos.as_ref().expect("the [array.qos] table parsed");
        assert_eq!(qos.target_latency_ms, Some(25.0));
        assert_eq!(qos.floor, 0.15);
        assert_eq!(
            qos.window_secs,
            crate::qos::SloSpec::default().window_secs,
            "omitted QoS fields take their defaults"
        );
        let config = s.array_config(&s.trace());
        assert!(config.qos.is_some(), "the spec reaches the array config");
        assert_eq!(
            config.activation,
            crate::config::ActivationPolicy::WaitForRepair
        );
        assert_eq!(s.events.len(), 5);
        assert_eq!(
            s.events[4],
            ScheduledEvent::workload_phase_swap(
                SimTime::from_secs(400.0),
                "night batch",
                WorkloadSource {
                    id: WorkloadId::Proj,
                    requests: 200,
                    seed: 0, // workload_seed defaults to 0 when omitted
                },
            )
        );
        assert_eq!(
            s.events[1],
            ScheduledEvent::policy_switch(SimTime::from_secs(240.0), PolicyKind::Arc)
        );
        assert_eq!(
            s.events[2],
            ScheduledEvent::disk_failure(SimTime::from_secs(300.0), 2)
        );
        assert_eq!(
            s.events[3],
            ScheduledEvent::disk_repair(SimTime::from_secs(360.0), 2)
        );
        assert!(s.observers.is_empty(), "omitted lists default to empty");
    }

    #[test]
    fn events_at_equal_times_apply_in_declaration_order() {
        let at = SimTime::from_secs(600.0);
        let s = tiny()
            .builder_like()
            .strategy(StrategyKind::Craid5Plus)
            .disks(4)
            .expansion_sets(vec![4])
            .expand_at(at, 4)
            .expand_at(at, 2)
            .build();
        let outcome = s.run().unwrap();
        let added: Vec<usize> = outcome.expansions.iter().map(|e| e.added_disks).collect();
        assert_eq!(added, vec![4, 2], "declaration order must be preserved");
        assert!(outcome.applied_events[0].description.contains("4 disks"));
        assert!(outcome.applied_events[1].description.contains("2 disks"));
    }

    #[test]
    fn campaign_sweep_builds_the_cartesian_product() {
        let base = tiny();
        let campaign = Campaign::sweep(
            &base,
            &[WorkloadId::Wdev, WorkloadId::Webusers],
            &[0.05, 0.2],
            &[StrategyKind::Raid5, StrategyKind::Craid5],
        );
        assert_eq!(campaign.len(), 8);
        let names: Vec<&str> = campaign
            .scenarios()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names[0], "wdev/RAID-5/pc0.05");
        assert_eq!(names[7], "webusers/CRAID-5/pc0.2");
        // Requests/seed come from the base scenario.
        assert!(campaign
            .scenarios()
            .iter()
            .all(|s| s.workload.requests == 400));
    }

    #[test]
    fn campaign_runs_in_parallel_and_preserves_order() {
        let base = tiny();
        let campaign = Campaign::sweep(
            &base,
            &[WorkloadId::Wdev],
            &[0.1],
            &[StrategyKind::Raid5, StrategyKind::Craid5],
        );
        let outcomes = campaign.run().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].strategy, StrategyKind::Raid5);
        assert_eq!(outcomes[1].strategy, StrategyKind::Craid5);
        assert!(outcomes[0].report.craid.is_none());
        assert!(outcomes[1].report.craid.is_some());
    }

    #[test]
    fn campaign_surfaces_scenario_errors() {
        let mut bad = tiny();
        bad.array.disks = Some(7); // parity group 4 does not divide 7
        let outcome = Campaign::new(vec![bad]).run();
        assert!(matches!(outcome, Err(CraidError::InvalidConfig(_))));
    }

    #[test]
    fn campaign_determinism_same_seed_identical_reports() {
        let s = tiny();
        let a = Campaign::new(vec![s.clone()]).run().unwrap();
        let b = Campaign::new(vec![s]).run().unwrap();
        assert_eq!(a[0].report, b[0].report);
    }

    impl Scenario {
        /// Test helper: reopen a scenario in a builder.
        fn builder_like(&self) -> ScenarioBuilder {
            ScenarioBuilder {
                scenario: self.clone(),
            }
        }
    }
}
