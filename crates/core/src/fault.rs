//! Disk failures: degraded-mode planning and rebuild scheduling.
//!
//! A RAID array's reliability story has two phases that this module models
//! (and that the paper's parity-group layouts were designed around):
//!
//! 1. **Degraded mode** — while a disk is failed, every read that would
//!    have touched it is reconstructed by reading the same row offset from
//!    the `G - 1` surviving members of its parity group
//!    ([`Layout::reconstruction_peers`](craid_raid::Layout)); writes aimed
//!    at the dead disk are absorbed by the (surviving) parity update.
//! 2. **Rebuild** — once a hot spare is installed (`DiskRepair`), a
//!    rate-paced task on the array's [`BackgroundEngine`] streams
//!    reconstruction I/O onto it, interleaved with client traffic, until
//!    the spare holds the full live image and the array is healthy again.
//!    Under the [`HotFirst`](crate::background::BackgroundPriority::HotFirst)
//!    priority the cache-partition rows and the hottest archive stripes are
//!    reconstructed first — the data-aware counterpart of CRAID's upgrade
//!    story.
//!
//! Both arrays ([`CraidArray`](crate::array::CraidArray),
//! [`BaselineArray`](crate::array::BaselineArray)) drive these primitives
//! from their `submit`/`fail_disk`/`repair_disk` paths; the counters land
//! in [`FaultStats`] on the final report.

use craid_diskmodel::{BlockRange, IoKind};
use craid_raid::IoPurpose;
use craid_simkit::SimTime;

use crate::background::{prioritized_segments, BackgroundEngine};
use crate::devices::{DeviceIoEvent, DeviceSet};
use crate::partition::PartitionIo;
use crate::report::FaultStats;

/// Upper bound on the number of scattered hot blocks a hot-first rebuild
/// front-loads (beyond this the seek cost of chasing singles outweighs the
/// benefit of reconstructing them early).
const MAX_HOT_REBUILD_BLOCKS: usize = 4_096;

/// Rewrites an I/O plan for an array whose disk `failed` is unavailable.
///
/// Reads targeting the failed disk fan out as [`IoPurpose::ReconstructRead`]
/// to the peers `peers_for` reports for that I/O (the surviving members of
/// its parity group); writes are dropped when `accepts_writes` is false (a
/// dead disk — parity absorbs the update) and passed through when it is
/// true (a rebuilding hot spare). Counters for the report accumulate into
/// `stats`.
pub(crate) fn degrade_plan(
    plan: Vec<PartitionIo>,
    failed: usize,
    accepts_writes: bool,
    peers_for: impl Fn(&PartitionIo) -> Vec<usize>,
    stats: &mut FaultStats,
) -> Vec<PartitionIo> {
    let mut out = Vec::with_capacity(plan.len());
    for io in plan {
        if io.disk != failed {
            out.push(io);
            continue;
        }
        match io.kind {
            IoKind::Read => {
                stats.degraded_reads += 1;
                for peer in peers_for(&io) {
                    stats.reconstruction_ios += 1;
                    stats.reconstruction_blocks += io.range.len();
                    out.push(PartitionIo {
                        disk: peer,
                        range: io.range,
                        kind: IoKind::Read,
                        purpose: IoPurpose::ReconstructRead,
                    });
                }
            }
            IoKind::Write if accepts_writes => out.push(io),
            IoKind::Write => stats.parity_absorbed_writes += 1,
        }
    }
    out
}

/// The per-disk physical block count a rebuild must reconstruct when
/// `used_logical` of `logical` addressable blocks hold data: the
/// physical-to-logical ratio folds the parity overhead in. Shared by both
/// arrays' live-region computations.
pub(crate) fn live_blocks(physical: u64, logical: u64, used_logical: u64) -> u64 {
    let logical = logical.max(1) as u128;
    let used = (used_logical as u128).min(logical);
    (physical as u128 * used).div_ceil(logical) as u64
}

/// The segment order a rebuild streams `live` physical blocks in: `hot`
/// ranges first (the cache-partition rows and the hottest archive stripes,
/// in the order given), then the ascending remainder. An empty `hot` list
/// is a plain sequential rebuild. Capped at [`MAX_HOT_REBUILD_BLOCKS`]
/// worth of scattered hot blocks by the callers.
pub(crate) fn rebuild_segments(live: u64, hot: Vec<BlockRange>) -> Vec<BlockRange> {
    prioritized_segments(live, hot)
}

/// Caps a hot-block list for [`rebuild_segments`] callers.
pub(crate) fn cap_hot_blocks(mut blocks: Vec<u64>) -> Vec<u64> {
    blocks.truncate(MAX_HOT_REBUILD_BLOCKS);
    blocks
}

/// Validates and starts a rebuild: installs the hot spare in `disk`'s slot
/// and enqueues a rebuild task (with the given segment order) on the
/// array's background engine. `segments` must cover the disk's *live*
/// region — the cache-partition rows plus the archive share of the dataset,
/// parity included — rather than the raw device capacity, in the spirit of
/// CRAID's data-aware maintenance: stripes that never held data need no
/// reconstruction. Shared by both array implementations' `repair_disk`.
#[allow(clippy::too_many_arguments)] // a plain parameter list beats a one-use builder here
pub(crate) fn start_rebuild(
    engine: &mut BackgroundEngine,
    devices: &mut DeviceSet,
    now: SimTime,
    disk: usize,
    peers: Vec<usize>,
    segments: Vec<BlockRange>,
    rate_blocks_per_sec: f64,
    stats: &mut FaultStats,
) -> Result<(), crate::error::CraidError> {
    if peers.is_empty() {
        return Err(crate::error::CraidError::InvalidFault(format!(
            "disk {disk} has no surviving parity-group members to rebuild from"
        )));
    }
    // Clamp every segment to the device, centrally: whatever live-region
    // estimate or hot-segment plan the caller produced, the rebuild never
    // writes past the spare's capacity.
    let capacity = devices.capacity_blocks(disk);
    let segments: Vec<BlockRange> = segments
        .into_iter()
        .filter(|r| r.start() < capacity)
        .map(|r| BlockRange::new(r.start(), r.len().min(capacity - r.start())))
        .collect();
    devices.start_rebuild(disk)?;
    engine.push_rebuild(now, disk, peers, segments, rate_blocks_per_sec);
    stats.disk_repairs += 1;
    Ok(())
}

/// Issues the device I/O for one rebuild batch: a
/// [`IoPurpose::RebuildRead`] of every range from every surviving peer plus
/// a [`IoPurpose::RebuildWrite`] of the reconstructed range onto the spare.
/// Shared by both array implementations' background pumps.
pub(crate) fn issue_rebuild_batch(
    now: SimTime,
    disk: usize,
    peers: &[usize],
    ranges: &[BlockRange],
    devices: &mut DeviceSet,
    events: &mut Vec<DeviceIoEvent>,
    stats: &mut FaultStats,
) {
    for &range in ranges {
        for &peer in peers {
            events.push(devices.submit(now, peer, IoKind::Read, range, IoPurpose::RebuildRead));
            stats.rebuild_read_blocks += range.len();
        }
        events.push(devices.submit(now, disk, IoKind::Write, range, IoPurpose::RebuildWrite));
        stats.rebuild_write_blocks += range.len();
    }
}

/// Applies a completed rebuild: the spare is marked healthy and the MTTR
/// recorded. Shared by both array implementations' background pumps.
pub(crate) fn complete_rebuild(
    done: &crate::background::CompletedTask,
    devices: &mut DeviceSet,
    stats: &mut FaultStats,
) {
    stats.rebuilds_completed += 1;
    stats.rebuild_secs += done.window_secs;
    devices.complete_rebuild(done.disk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::{Batch, TaskKind};
    use crate::config::{ArrayConfig, StrategyKind};

    fn io(disk: usize, start: u64, len: u64, kind: IoKind) -> PartitionIo {
        PartitionIo {
            disk,
            range: BlockRange::new(start, len),
            kind,
            purpose: IoPurpose::Data,
        }
    }

    #[test]
    fn degrade_fans_reads_out_to_peers_and_leaves_others_alone() {
        let plan = vec![io(0, 10, 4, IoKind::Read), io(2, 10, 4, IoKind::Read)];
        let mut stats = FaultStats::default();
        let out = degrade_plan(plan, 2, false, |_| vec![0, 1, 3], &mut stats);
        // Disk 0's read survives untouched; disk 2's read becomes three
        // reconstruction reads at the same range.
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], io(0, 10, 4, IoKind::Read));
        for (rec, peer) in out[1..].iter().zip([0, 1, 3]) {
            assert_eq!(rec.disk, peer);
            assert_eq!(rec.range, BlockRange::new(10, 4));
            assert_eq!(rec.purpose, IoPurpose::ReconstructRead);
        }
        assert_eq!(stats.degraded_reads, 1);
        assert_eq!(stats.reconstruction_ios, 3);
        assert_eq!(stats.reconstruction_blocks, 12);
    }

    #[test]
    fn degrade_absorbs_writes_to_a_dead_disk_but_not_to_a_spare() {
        let plan = vec![io(2, 0, 2, IoKind::Write)];
        let mut stats = FaultStats::default();
        let dead = degrade_plan(plan.clone(), 2, false, |_| vec![0, 1], &mut stats);
        assert!(dead.is_empty(), "a dead disk cannot take the write");
        assert_eq!(stats.parity_absorbed_writes, 1);

        let spare = degrade_plan(plan, 2, true, |_| vec![0, 1], &mut stats);
        assert_eq!(spare.len(), 1, "a rebuilding spare accepts writes");
    }

    #[test]
    fn rebuild_on_the_engine_paces_heals_and_records_traffic() {
        let cfg = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        let mut devices = DeviceSet::from_config(&cfg);
        devices.fail_disk(1).unwrap();

        let mut engine = BackgroundEngine::new();
        let mut events = Vec::new();
        let mut stats = FaultStats::default();
        start_rebuild(
            &mut engine,
            &mut devices,
            SimTime::ZERO,
            1,
            vec![0, 2, 3],
            rebuild_segments(1_000, Vec::new()),
            100.0,
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.disk_repairs, 1);

        // At t = 0 nothing is due yet.
        assert!(engine.poll(SimTime::ZERO).is_empty());
        // At t = 2 s the pace demands 200 blocks: one batch catches up.
        let batches = engine.poll(SimTime::from_secs(2.0));
        let [Batch::Rebuild {
            disk,
            peers,
            ranges,
            ..
        }] = batches.as_slice()
        else {
            panic!("a rebuild batch is due");
        };
        issue_rebuild_batch(
            SimTime::from_secs(2.0),
            *disk,
            peers,
            ranges,
            &mut devices,
            &mut events,
            &mut stats,
        );
        assert_eq!(events.len(), 4, "3 peer reads + 1 spare write");
        assert!(events[..3]
            .iter()
            .all(|e| e.purpose == IoPurpose::RebuildRead));
        assert_eq!(events[3].purpose, IoPurpose::RebuildWrite);
        assert_eq!(events[3].device, 1);
        assert_eq!(stats.rebuild_write_blocks, 200);
        assert_eq!(stats.rebuild_read_blocks, 600);

        // Far in the future the engine catches up in capped batches until
        // the spare holds the whole live image.
        loop {
            let batches = engine.poll(SimTime::from_secs(100.0));
            if batches.is_empty() {
                break;
            }
            for batch in batches {
                let Batch::Rebuild {
                    disk,
                    peers,
                    ranges,
                    ..
                } = batch
                else {
                    panic!("only a rebuild is queued");
                };
                issue_rebuild_batch(
                    SimTime::from_secs(100.0),
                    disk,
                    &peers,
                    &ranges,
                    &mut devices,
                    &mut events,
                    &mut stats,
                );
            }
        }
        let done = engine.take_completed();
        assert_eq!(done.len(), 1, "the rebuild finished");
        let done = &done[0];
        assert_eq!(done.kind, TaskKind::Rebuild);
        complete_rebuild(done, &mut devices, &mut stats);
        assert_eq!(stats.rebuilds_completed, 1);
        assert_eq!(stats.rebuild_write_blocks, 1_000);
        assert_eq!(stats.rebuild_secs, 100.0);
        assert_eq!(devices.degraded_disk(), None, "the array healed");
    }

    #[test]
    fn rebuild_without_peers_is_rejected() {
        let cfg = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        let mut devices = DeviceSet::from_config(&cfg);
        devices.fail_disk(0).unwrap();
        let mut engine = BackgroundEngine::new();
        let mut stats = FaultStats::default();
        let err = start_rebuild(
            &mut engine,
            &mut devices,
            SimTime::ZERO,
            0,
            Vec::new(),
            vec![BlockRange::new(0, 10)],
            100.0,
            &mut stats,
        );
        assert!(err.is_err());
        assert!(engine.is_idle());
    }

    #[test]
    fn live_region_scales_with_usage() {
        assert_eq!(live_blocks(1_000, 800, 400), 500);
        assert_eq!(live_blocks(1_000, 800, 0), 0);
        assert_eq!(live_blocks(1_000, 800, 10_000), 1_000, "clamped to full");
        assert_eq!(live_blocks(999, 1_000, 1), 1, "rounds up");
    }

    #[test]
    fn hot_block_cap_is_enforced() {
        let capped = cap_hot_blocks((0..10_000u64).collect());
        assert_eq!(capped.len(), super::MAX_HOT_REBUILD_BLOCKS);
    }
}
