//! Disk failures: degraded-mode planning and the background rebuild engine.
//!
//! A RAID array's reliability story has two phases that this module models
//! (and that the paper's parity-group layouts were designed around):
//!
//! 1. **Degraded mode** — while a disk is failed, every read that would
//!    have touched it is reconstructed by reading the same row offset from
//!    the `G - 1` surviving members of its parity group
//!    ([`Layout::reconstruction_peers`](craid_raid::Layout)); writes aimed
//!    at the dead disk are absorbed by the (surviving) parity update.
//! 2. **Rebuild** — once a hot spare is installed (`DiskRepair`), the
//!    [`RebuildEngine`] streams reconstruction I/O onto it, interleaved
//!    with client traffic and paced by a configurable rate, until the
//!    spare holds the full device image and the array is healthy again.
//!
//! Both arrays ([`CraidArray`](crate::array::CraidArray),
//! [`BaselineArray`](crate::array::BaselineArray)) drive these primitives
//! from their `submit`/`fail_disk`/`repair_disk` paths; the counters land
//! in [`FaultStats`] on the final report.

use craid_diskmodel::{BlockRange, IoKind};
use craid_raid::IoPurpose;
use craid_simkit::SimTime;

/// Upper bound on one rebuild batch (8 MiB): keeps a single catch-up step
/// from turning into a device-monopolising monster transfer when the
/// configured rate is high or client traffic is sparse.
const MAX_REBUILD_BATCH_BLOCKS: u64 = 2_048;

use crate::devices::{DeviceIoEvent, DeviceSet};
use crate::partition::PartitionIo;
use crate::report::FaultStats;

/// Rewrites an I/O plan for an array whose disk `failed` is unavailable.
///
/// Reads targeting the failed disk fan out as [`IoPurpose::ReconstructRead`]
/// to the peers `peers_for` reports for that I/O (the surviving members of
/// its parity group); writes are dropped when `accepts_writes` is false (a
/// dead disk — parity absorbs the update) and passed through when it is
/// true (a rebuilding hot spare). Counters for the report accumulate into
/// `stats`.
pub(crate) fn degrade_plan(
    plan: Vec<PartitionIo>,
    failed: usize,
    accepts_writes: bool,
    peers_for: impl Fn(&PartitionIo) -> Vec<usize>,
    stats: &mut FaultStats,
) -> Vec<PartitionIo> {
    let mut out = Vec::with_capacity(plan.len());
    for io in plan {
        if io.disk != failed {
            out.push(io);
            continue;
        }
        match io.kind {
            IoKind::Read => {
                stats.degraded_reads += 1;
                for peer in peers_for(&io) {
                    stats.reconstruction_ios += 1;
                    stats.reconstruction_blocks += io.range.len();
                    out.push(PartitionIo {
                        disk: peer,
                        range: io.range,
                        kind: IoKind::Read,
                        purpose: IoPurpose::ReconstructRead,
                    });
                }
            }
            IoKind::Write if accepts_writes => out.push(io),
            IoKind::Write => stats.parity_absorbed_writes += 1,
        }
    }
    out
}

/// Streams the reconstruction of a failed disk onto its hot spare.
///
/// The engine is rate-paced in simulated time: by time `t` after the
/// repair started, `rate_blocks_per_sec × t` blocks should have been
/// reconstructed. Progress is realised lazily — each call to
/// [`RebuildEngine::step`] (made by the owning array at the head of every
/// client `submit`) issues at most one catch-up batch, so rebuild I/O is
/// interleaved with client traffic instead of monopolising the devices.
#[derive(Debug, Clone)]
pub struct RebuildEngine {
    disk: usize,
    peers: Vec<usize>,
    cursor: u64,
    end: u64,
    rate_blocks_per_sec: f64,
    started: SimTime,
}

impl RebuildEngine {
    /// Starts a rebuild of `disk` (whole-device image of `end` blocks) fed
    /// by `peers`, at `rate_blocks_per_sec`, beginning at `started`.
    pub fn new(
        disk: usize,
        peers: Vec<usize>,
        end: u64,
        rate_blocks_per_sec: f64,
        started: SimTime,
    ) -> Self {
        RebuildEngine {
            disk,
            peers,
            cursor: 0,
            end,
            rate_blocks_per_sec,
            started,
        }
    }

    /// The device slot being rebuilt.
    pub fn disk(&self) -> usize {
        self.disk
    }

    /// Blocks reconstructed so far.
    pub fn progress_blocks(&self) -> u64 {
        self.cursor
    }

    /// True once the spare holds the full device image.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.end
    }

    /// Simulated seconds since the rebuild started.
    pub fn elapsed_secs(&self, now: SimTime) -> f64 {
        now.saturating_since(self.started).as_secs()
    }

    /// The next catch-up batch at time `now`: the block range to
    /// reconstruct, or `None` when the pace is already met (or the rebuild
    /// is done). Each batch is capped at [`MAX_REBUILD_BATCH_BLOCKS`] so a
    /// long gap between client requests (or an aggressive rate) cannot
    /// produce an unbounded device I/O — with sparse traffic the rebuild
    /// simply lags its nominal pace, which is the interleaving the design
    /// wants.
    fn next_batch(&mut self, now: SimTime) -> Option<BlockRange> {
        if self.is_done() {
            return None;
        }
        let target = ((self.rate_blocks_per_sec * self.elapsed_secs(now)) as u64).min(self.end);
        if target <= self.cursor {
            return None;
        }
        let len = (target - self.cursor).clamp(1, MAX_REBUILD_BATCH_BLOCKS);
        let range = BlockRange::new(self.cursor, len);
        self.cursor += len;
        Some(range)
    }

    /// Issues one catch-up batch of rebuild I/O at `now` — a
    /// [`IoPurpose::RebuildRead`] of the batch range from every surviving
    /// peer plus a [`IoPurpose::RebuildWrite`] of the reconstructed range
    /// onto the spare — appending the device events to `events` and the
    /// counters to `stats`. Returns true when this step completed the
    /// rebuild (the caller marks the device healthy and records the MTTR).
    pub(crate) fn step(
        &mut self,
        now: SimTime,
        devices: &mut DeviceSet,
        events: &mut Vec<DeviceIoEvent>,
        stats: &mut FaultStats,
    ) -> bool {
        let Some(range) = self.next_batch(now) else {
            return false;
        };
        for &peer in &self.peers {
            events.push(devices.submit(now, peer, IoKind::Read, range, IoPurpose::RebuildRead));
            stats.rebuild_read_blocks += range.len();
        }
        events.push(devices.submit(
            now,
            self.disk,
            IoKind::Write,
            range,
            IoPurpose::RebuildWrite,
        ));
        stats.rebuild_write_blocks += range.len();
        self.is_done()
    }
}

/// The per-disk physical block count a rebuild must reconstruct when
/// `used_logical` of `logical` addressable blocks hold data: the
/// physical-to-logical ratio folds the parity overhead in. Shared by both
/// arrays' live-region computations.
pub(crate) fn live_blocks(physical: u64, logical: u64, used_logical: u64) -> u64 {
    let logical = logical.max(1) as u128;
    let used = (used_logical as u128).min(logical);
    (physical as u128 * used).div_ceil(logical) as u64
}

/// Validates and starts a rebuild: installs the hot spare in `disk`'s slot
/// and parks a [`RebuildEngine`] in `rebuild`. `live_blocks` is the
/// per-disk region the rebuild reconstructs — the arrays pass their *live*
/// footprint (cache-partition rows plus the archive share of the dataset,
/// parity included) rather than the raw device capacity, in the spirit of
/// CRAID's data-aware maintenance: stripes that never held data need no
/// reconstruction. Shared by both array implementations' `repair_disk`.
#[allow(clippy::too_many_arguments)] // a plain parameter list beats a one-use builder here
pub(crate) fn start_rebuild(
    rebuild: &mut Option<RebuildEngine>,
    devices: &mut DeviceSet,
    now: SimTime,
    disk: usize,
    peers: Vec<usize>,
    live_blocks: u64,
    rate_blocks_per_sec: f64,
    stats: &mut FaultStats,
) -> Result<(), crate::error::CraidError> {
    if peers.is_empty() {
        return Err(crate::error::CraidError::InvalidFault(format!(
            "disk {disk} has no surviving parity-group members to rebuild from"
        )));
    }
    devices.start_rebuild(disk)?;
    *rebuild = Some(RebuildEngine::new(
        disk,
        peers,
        live_blocks.min(devices.capacity_blocks(disk)).max(1),
        rate_blocks_per_sec,
        now,
    ));
    stats.disk_repairs += 1;
    Ok(())
}

/// Runs one interleaved rebuild step at `now` and, when it completes the
/// spare, marks the device healthy and records the MTTR. Shared by both
/// array implementations' `submit`.
pub(crate) fn step_rebuild(
    rebuild: &mut Option<RebuildEngine>,
    now: SimTime,
    devices: &mut DeviceSet,
    events: &mut Vec<DeviceIoEvent>,
    stats: &mut FaultStats,
) {
    let Some(engine) = rebuild else { return };
    if engine.step(now, devices, events, stats) {
        stats.rebuilds_completed += 1;
        stats.rebuild_secs += engine.elapsed_secs(now);
        devices.complete_rebuild(engine.disk());
        *rebuild = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayConfig, StrategyKind};

    fn io(disk: usize, start: u64, len: u64, kind: IoKind) -> PartitionIo {
        PartitionIo {
            disk,
            range: BlockRange::new(start, len),
            kind,
            purpose: IoPurpose::Data,
        }
    }

    #[test]
    fn degrade_fans_reads_out_to_peers_and_leaves_others_alone() {
        let plan = vec![io(0, 10, 4, IoKind::Read), io(2, 10, 4, IoKind::Read)];
        let mut stats = FaultStats::default();
        let out = degrade_plan(plan, 2, false, |_| vec![0, 1, 3], &mut stats);
        // Disk 0's read survives untouched; disk 2's read becomes three
        // reconstruction reads at the same range.
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], io(0, 10, 4, IoKind::Read));
        for (rec, peer) in out[1..].iter().zip([0, 1, 3]) {
            assert_eq!(rec.disk, peer);
            assert_eq!(rec.range, BlockRange::new(10, 4));
            assert_eq!(rec.purpose, IoPurpose::ReconstructRead);
        }
        assert_eq!(stats.degraded_reads, 1);
        assert_eq!(stats.reconstruction_ios, 3);
        assert_eq!(stats.reconstruction_blocks, 12);
    }

    #[test]
    fn degrade_absorbs_writes_to_a_dead_disk_but_not_to_a_spare() {
        let plan = vec![io(2, 0, 2, IoKind::Write)];
        let mut stats = FaultStats::default();
        let dead = degrade_plan(plan.clone(), 2, false, |_| vec![0, 1], &mut stats);
        assert!(dead.is_empty(), "a dead disk cannot take the write");
        assert_eq!(stats.parity_absorbed_writes, 1);

        let spare = degrade_plan(plan, 2, true, |_| vec![0, 1], &mut stats);
        assert_eq!(spare.len(), 1, "a rebuilding spare accepts writes");
    }

    #[test]
    fn rebuild_engine_paces_by_rate_and_finishes() {
        let cfg = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        let mut devices = DeviceSet::from_config(&cfg);
        devices.fail_disk(1).unwrap();
        devices.start_rebuild(1).unwrap();

        let mut engine = RebuildEngine::new(1, vec![0, 2, 3], 1_000, 100.0, SimTime::ZERO);
        let mut events = Vec::new();
        let mut stats = FaultStats::default();

        // At t = 0 nothing is due yet.
        assert!(!engine.step(SimTime::ZERO, &mut devices, &mut events, &mut stats));
        assert!(events.is_empty());

        // At t = 2 s the pace demands 200 blocks: one batch catches up.
        assert!(!engine.step(
            SimTime::from_secs(2.0),
            &mut devices,
            &mut events,
            &mut stats
        ));
        assert_eq!(engine.progress_blocks(), 200);
        assert_eq!(events.len(), 4, "3 peer reads + 1 spare write");
        assert!(events[..3]
            .iter()
            .all(|e| e.purpose == IoPurpose::RebuildRead));
        assert_eq!(events[3].purpose, IoPurpose::RebuildWrite);
        assert_eq!(events[3].device, 1);
        assert_eq!(stats.rebuild_write_blocks, 200);
        assert_eq!(stats.rebuild_read_blocks, 600);
        // Already at pace: an immediate second step is a no-op.
        assert!(!engine.step(
            SimTime::from_secs(2.0),
            &mut devices,
            &mut events,
            &mut stats
        ));
        assert_eq!(engine.progress_blocks(), 200);

        // Far in the future the engine catches up one capped batch at a
        // time until the spare holds the whole image.
        let mut done = false;
        for _ in 0..20 {
            if engine.step(
                SimTime::from_secs(100.0),
                &mut devices,
                &mut events,
                &mut stats,
            ) {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(engine.is_done());
        assert_eq!(engine.progress_blocks(), 1_000);
        assert_eq!(stats.rebuild_write_blocks, 1_000);
        assert_eq!(engine.elapsed_secs(SimTime::from_secs(100.0)), 100.0);
    }

    #[test]
    fn rebuild_batches_are_capped() {
        let cfg = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        let mut devices = DeviceSet::from_config(&cfg);
        devices.fail_disk(0).unwrap();
        devices.start_rebuild(0).unwrap();
        // An absurd rate still produces bounded batches.
        let mut engine = RebuildEngine::new(0, vec![1], 100_000, 1e9, SimTime::ZERO);
        let mut events = Vec::new();
        let mut stats = FaultStats::default();
        engine.step(
            SimTime::from_secs(5.0),
            &mut devices,
            &mut events,
            &mut stats,
        );
        assert_eq!(engine.progress_blocks(), super::MAX_REBUILD_BATCH_BLOCKS);
        assert!(events
            .iter()
            .all(|e| e.blocks <= super::MAX_REBUILD_BATCH_BLOCKS));
    }
}
