//! Integration tests for online upgrades: the headline CRAID claim that
//! adding disks only redistributes the cache partition. Upgrades are
//! declared as `ScheduledEvent` timelines on `Scenario`s.

use craid::{Scenario, StrategyKind};
use craid_raid::{minimal_migration_blocks, ExpansionSchedule};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;

/// The shared base: a 4-disk test array on the webusers workload.
fn base(strategy: StrategyKind) -> Scenario {
    Scenario::builder()
        .name("upgrade-test")
        .strategy(strategy)
        .workload(WorkloadId::Webusers)
        .requests(3_000)
        .seed(9)
        .small_test()
        .pc_fraction(0.2)
        .disks(4)
        .expansion_sets(vec![4])
        .build()
}

fn trace_span_secs() -> f64 {
    base(StrategyKind::Craid5Plus).trace().duration().as_secs()
}

#[test]
fn craid_migrates_orders_of_magnitude_less_than_a_restripe() {
    let mut scenario = base(StrategyKind::Craid5Plus);
    let footprint = scenario.trace().footprint_blocks();
    let mid = SimTime::from_secs(trace_span_secs() / 2.0);
    scenario.events.push(craid::ScheduledEvent::expand(mid, 4));
    let outcome = scenario.run().expect("valid upgrade scenario");
    assert_eq!(outcome.expansions.len(), 1);
    let craid_migrated = outcome.expansions[0].migrated_blocks;
    assert!(
        craid_migrated > 0,
        "a warm cache partition has something to refill"
    );
    assert!(
        craid_migrated < footprint / 3,
        "CRAID migration ({craid_migrated}) must be a small fraction of the dataset ({footprint})"
    );
    // Even the theoretical minimum for rebalancing the whole dataset moves more.
    assert!(craid_migrated < minimal_migration_blocks(footprint, 4, 8));
}

#[test]
fn service_continues_through_a_whole_expansion_schedule() {
    let span = trace_span_secs();
    let mut builder = Scenario::builder()
        .name("upgrade-schedule")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Webusers)
        .requests(3_000)
        .seed(9)
        .small_test()
        .pc_fraction(0.2)
        .disks(4)
        .expansion_sets(vec![4]);
    for (i, added) in [2usize, 2, 4].iter().enumerate() {
        builder = builder.expand_at(SimTime::from_secs(span * (i + 1) as f64 / 4.0), *added);
    }
    let scenario = builder.build();
    let expected_requests = scenario.trace().len() as u64;
    let outcome = scenario.run().expect("valid upgrade scenario");
    assert_eq!(outcome.expansions.len(), 3);
    assert_eq!(outcome.applied_events.len(), 3);
    assert!(outcome.applied_events.iter().all(|e| e.during_replay));
    assert_eq!(
        outcome.report.requests, expected_requests,
        "no request is dropped during upgrades"
    );
    // Dirty blocks written back during invalidation show up as upgrade I/O.
    assert!(outcome.expansions.iter().any(|u| u.writeback_blocks > 0));
    // The array keeps hitting its (rebuilt) cache after the upgrades.
    assert!(outcome.report.craid.unwrap().hit_ratio > 0.1);
}

#[test]
fn baseline_restripe_cost_dwarfs_craid_on_the_paper_schedule() {
    // Pure address arithmetic (no device simulation): compare the per-step
    // migration of a round-robin restripe against CRAID's bound (its cache
    // partition size) over the paper's 10 -> 50 disk schedule.
    let schedule = ExpansionSchedule::paper();
    let dataset: u64 = 500_000;
    let pc: u64 = dataset / 50; // a 2% cache partition
    for (old, new) in schedule.transitions() {
        let minimal = minimal_migration_blocks(dataset, old, new);
        assert!(
            pc < minimal,
            "CRAID's bound ({pc}) must stay below even minimal rebalancing ({minimal}) at {old}->{new}"
        );
    }
}

#[test]
fn ssd_cached_craid_keeps_serving_without_invalidation() {
    let mid = SimTime::from_secs(trace_span_secs() / 2.0);
    let mut scenario = base(StrategyKind::Craid5PlusSsd);
    scenario.events.push(craid::ScheduledEvent::expand(mid, 4));
    let outcome = scenario.run().expect("valid upgrade scenario");
    assert_eq!(
        outcome.expansions[0].migrated_blocks, 0,
        "the SSD cache tier is unaffected"
    );
    assert_eq!(outcome.expansions[0].writeback_blocks, 0);
    assert!(outcome.report.craid.unwrap().hit_ratio > 0.1);
}
