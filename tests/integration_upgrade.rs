//! Integration tests for online upgrades: the headline CRAID claim that
//! adding disks only redistributes the cache partition.

use craid::{ArrayConfig, Simulation, StrategyKind};
use craid_raid::{minimal_migration_blocks, ExpansionSchedule};
use craid_simkit::SimTime;
use craid_trace::{SyntheticWorkload, WorkloadId};

fn trace() -> craid_trace::Trace {
    SyntheticWorkload::paper_scaled_to(WorkloadId::Webusers, 3_000).generate(9)
}

#[test]
fn craid_migrates_orders_of_magnitude_less_than_a_restripe() {
    let t = trace();
    let footprint = t.footprint_blocks();
    let mut config = ArrayConfig::small_test(StrategyKind::Craid5Plus, footprint);
    config.disks = 4;
    config.expansion_sets = vec![4];
    let mid = SimTime::from_secs(t.duration().as_secs() / 2.0);
    let (_, upgrades) = Simulation::new(config).run_with_expansions(&t, &[(mid, 4)]);
    assert_eq!(upgrades.len(), 1);
    let craid_migrated = upgrades[0].migrated_blocks;
    assert!(craid_migrated > 0, "a warm cache partition has something to refill");
    assert!(
        craid_migrated < footprint / 3,
        "CRAID migration ({craid_migrated}) must be a small fraction of the dataset ({footprint})"
    );
    // Even the theoretical minimum for rebalancing the whole dataset moves more.
    assert!(craid_migrated < minimal_migration_blocks(footprint, 4, 8));
}

#[test]
fn service_continues_through_a_whole_expansion_schedule() {
    let t = trace();
    let footprint = t.footprint_blocks();
    let mut config = ArrayConfig::small_test(StrategyKind::Craid5Plus, footprint);
    config.disks = 4;
    config.expansion_sets = vec![4];
    let span = t.duration().as_secs();
    let expansions: Vec<(SimTime, usize)> = [2usize, 2, 4]
        .iter()
        .enumerate()
        .map(|(i, &added)| (SimTime::from_secs(span * (i + 1) as f64 / 4.0), added))
        .collect();
    let (report, upgrades) = Simulation::new(config).run_with_expansions(&t, &expansions);
    assert_eq!(upgrades.len(), 3);
    assert_eq!(report.requests, t.len() as u64, "no request is dropped during upgrades");
    // Dirty blocks written back during invalidation show up as upgrade I/O.
    assert!(upgrades.iter().any(|u| u.writeback_blocks > 0));
    // The array keeps hitting its (rebuilt) cache after the upgrades.
    assert!(report.craid.unwrap().hit_ratio > 0.1);
}

#[test]
fn baseline_restripe_cost_dwarfs_craid_on_the_paper_schedule() {
    // Pure address arithmetic (no device simulation): compare the per-step
    // migration of a round-robin restripe against CRAID's bound (its cache
    // partition size) over the paper's 10 -> 50 disk schedule.
    let schedule = ExpansionSchedule::paper();
    let dataset: u64 = 500_000;
    let pc: u64 = dataset / 50; // a 2% cache partition
    for (old, new) in schedule.transitions() {
        let minimal = minimal_migration_blocks(dataset, old, new);
        assert!(
            pc < minimal,
            "CRAID's bound ({pc}) must stay below even minimal rebalancing ({minimal}) at {old}->{new}"
        );
    }
}

#[test]
fn ssd_cached_craid_keeps_serving_without_invalidation() {
    let t = trace();
    let mut config = ArrayConfig::small_test(StrategyKind::Craid5PlusSsd, t.footprint_blocks());
    config.disks = 4;
    config.expansion_sets = vec![4];
    let mid = SimTime::from_secs(t.duration().as_secs() / 2.0);
    let (report, upgrades) = Simulation::new(config).run_with_expansions(&t, &[(mid, 4)]);
    assert_eq!(upgrades[0].migrated_blocks, 0, "the SSD cache tier is unaffected");
    assert_eq!(upgrades[0].writeback_blocks, 0);
    assert!(report.craid.unwrap().hit_ratio > 0.1);
}
