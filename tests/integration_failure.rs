//! Failure-injection integration tests: crash recovery of the mapping cache,
//! malformed inputs, and error paths of the public API.

use craid::{ArrayConfig, CraidError, MappingCache, Simulation, StrategyKind};
use craid_cache::PolicyKind;
use craid_diskmodel::{BlockRange, IoKind};
use craid_simkit::SimTime;
use craid_trace::{SyntheticWorkload, Trace, TraceRecord, WorkloadId};

#[test]
fn mapping_cache_crash_recovery_preserves_exactly_the_dirty_blocks() {
    // Build up a mapping cache as the monitor would, "crash", and recover
    // from the persistent dirty log (paper §4.2).
    let mut mapping = MappingCache::new();
    for block in 0..1_000u64 {
        mapping.insert(block * 3, block, block % 4 == 0);
    }
    let log = mapping.dirty_log();
    assert_eq!(log.len(), 250);

    let recovered = MappingCache::recover_from_log(&log);
    assert_eq!(recovered.len(), 250);
    for entry in &log {
        let m = recovered
            .lookup(entry.pa_block)
            .expect("dirty block survived the crash");
        assert!(m.dirty);
        assert_eq!(m.pc_block, entry.pc_block);
    }
    // Clean blocks were invalidated: their next access misses, which is safe
    // because the archive still holds identical data.
    assert!(recovered.lookup(3).is_none());
}

#[test]
fn out_of_range_requests_are_rejected_not_swallowed() {
    let trace = SyntheticWorkload::paper_scaled_to(WorkloadId::Wdev, 2_000).generate(1);
    let config = ArrayConfig::small_test(StrategyKind::Craid5, trace.footprint_blocks());
    let mut array = craid::array::build_array(&config).unwrap();
    let cap = array.capacity_blocks();
    let err = array
        .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(cap - 1, 10))
        .unwrap_err();
    assert!(matches!(err, CraidError::OutOfRange { .. }));
    // The array is still usable after the error.
    assert!(array
        .submit(SimTime::ZERO, IoKind::Read, BlockRange::new(0, 4))
        .is_ok());
}

#[test]
fn invalid_configurations_fail_fast_with_descriptive_errors() {
    let mut config = ArrayConfig::paper(StrategyKind::Craid5, 10_000, 500);
    config.parity_group = 7; // does not divide 50
    let err = config.validate().unwrap_err();
    assert!(err.to_string().contains("parity group"));

    let mut config = ArrayConfig::paper(StrategyKind::Craid5Plus, 10_000, 500);
    config.expansion_sets = vec![10, 10];
    assert!(config.validate().is_err());

    let config = ArrayConfig::paper(StrategyKind::Craid5, 10_000, 0);
    assert!(matches!(
        config.validate(),
        Err(CraidError::InvalidConfig(_))
    ));
}

#[test]
fn malformed_traces_are_rejected_at_construction() {
    let ok = TraceRecord::new(SimTime::from_secs(1.0), IoKind::Read, 0, 4);
    let later = TraceRecord::new(SimTime::from_secs(2.0), IoKind::Write, 8, 4);
    // Out-of-order records.
    let result = std::panic::catch_unwind(|| Trace::new("bad", 100, vec![later, ok]));
    assert!(result.is_err());
    // Records beyond the declared footprint.
    let result = std::panic::catch_unwind(|| {
        Trace::new(
            "bad",
            4,
            vec![TraceRecord::new(SimTime::ZERO, IoKind::Read, 2, 8)],
        )
    });
    assert!(result.is_err());
}

#[test]
fn expansion_errors_leave_the_simulation_usable() {
    let trace = SyntheticWorkload::paper_scaled_to(WorkloadId::Webusers, 2_000).generate(2);
    let config = ArrayConfig::small_test(StrategyKind::Craid5Plus, trace.footprint_blocks());
    // Adding a single disk cannot form a RAID-5 set: the fallible API
    // reports the error instead of corrupting the run.
    let sim = Simulation::new(config);
    let events = [craid::ScheduledEvent::expand(SimTime::from_secs(1.0), 1)];
    let result = sim.try_run_events(&trace, &events, &mut craid::NullObserver);
    assert!(matches!(result, Err(CraidError::InvalidExpansion(_))));
    // A plain run with the same driver still works.
    assert!(sim.try_run(&trace).is_ok());
}

#[test]
fn malformed_scenario_documents_are_rejected_with_context() {
    // Unknown strategy names, bad event kinds and type mismatches must all
    // surface as errors, not panics or silent defaults.
    let bad_strategy = r#"
        name = "bad"
        strategy = "RAID-6"
        [workload]
        id = "wdev"
        requests = 100
        seed = 1
        [array]
        preset = "paper"
        pc_fraction = 0.1
    "#;
    let err = craid::Scenario::from_toml(bad_strategy).unwrap_err();
    assert!(err.to_string().contains("unknown strategy"), "{err}");

    let bad_event = r#"
        name = "bad"
        strategy = "CRAID-5"
        [workload]
        id = "wdev"
        requests = 100
        seed = 1
        [array]
        preset = "paper"
        pc_fraction = 0.1
        [[events]]
        kind = "disk-melt"
        at_secs = 1.0
    "#;
    let err = craid::Scenario::from_toml(bad_event).unwrap_err();
    assert!(err.to_string().contains("unknown event kind"), "{err}");

    let err = craid::Scenario::from_toml("strategy = 5").unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn every_policy_survives_pathological_single_block_thrashing() {
    // A worst-case anti-locality stream: every access a distinct block, far
    // larger than the cache. No policy may panic, leak residency, or report
    // impossible ratios.
    let records: Vec<TraceRecord> = (0..5_000u64)
        .map(|i| TraceRecord::new(SimTime::from_millis(i as f64), IoKind::Write, i, 1))
        .collect();
    let trace = Trace::new("thrash", 5_000, records);
    for policy in PolicyKind::paper_set() {
        let q = craid::policy_quality(policy, &trace, 0.01);
        assert_eq!(
            q.hit_ratio, 0.0,
            "{policy}: nothing repeats, nothing can hit"
        );
        assert!(
            q.replacement_ratio > 0.9,
            "{policy}: almost every miss must replace"
        );
    }
}
