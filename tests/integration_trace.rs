//! Integration tests for the deterministic tracing layer (`craid-obs`):
//! the golden event-count reconciliation between a Chrome trace export and
//! the report's `obs` snapshot, trace-twice byte-diff determinism for
//! every shipped drill, and the pin that tracing-off reports stay
//! byte-identical to a build without tracing.

use craid::Scenario;
use serde::Value;

/// Every drill shipped under `examples/scenarios/` (the `invalid/`
/// fixtures are analyzer food, not runnable scenarios).
const DRILLS: &[(&str, &str)] = &[
    (
        "failure_drill",
        include_str!("../examples/scenarios/failure_drill.toml"),
    ),
    (
        "online_upgrade_drill",
        include_str!("../examples/scenarios/online_upgrade_drill.toml"),
    ),
    (
        "qos_drill",
        include_str!("../examples/scenarios/qos_drill.toml"),
    ),
    (
        "upgrade_drill",
        include_str!("../examples/scenarios/upgrade_drill.toml"),
    ),
];

/// Loads a drill scaled down to `requests` with observers silenced, so
/// the tests stay fast and quiet without changing what they pin.
fn drill(text: &str, requests: u64) -> Scenario {
    let mut scenario = Scenario::from_toml(text).expect("shipped drill parses");
    scenario.workload.requests = requests;
    scenario.observers.clear();
    scenario
}

/// Counts the non-metadata `traceEvents` per category in a parsed Chrome
/// export. The five `ph == "M"` records are per-track `thread_name`
/// metadata, not trace events.
fn chrome_category_counts(root: &Value) -> std::collections::BTreeMap<String, u64> {
    let events = root
        .get("traceEvents")
        .and_then(Value::as_seq)
        .expect("chrome export has a traceEvents array");
    let mut counts = std::collections::BTreeMap::new();
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        let cat = event.get("cat").and_then(Value::as_str).expect("cat");
        *counts.entry(cat.to_string()).or_insert(0) += 1;
    }
    counts
}

/// Satellite: the golden event-count test. The QoS drill traced end to
/// end produces a Chrome export that parses as JSON, carries at least
/// four span categories, and reconciles event-for-event with the `obs`
/// snapshot embedded in the report — which itself reconciles with the
/// report's own request counter.
#[test]
fn qos_drill_chrome_trace_reconciles_with_the_report() {
    let scenario = drill(DRILLS[2].1, 4_000);
    let (outcome, trace) = scenario
        .run_traced(craid_obs::DEFAULT_CAPACITY, 1)
        .expect("qos drill runs traced");
    let obs = outcome.report.obs.as_ref().expect("traced run embeds obs");
    assert_eq!(obs.dropped, 0, "the default ring holds the whole drill");
    assert_eq!(obs.events, obs.recorded);

    let chrome = trace.to_chrome_json();
    let root: Value = serde_json::from_str(&chrome).expect("chrome export parses as JSON");
    let counts = chrome_category_counts(&root);

    // Event-for-event reconciliation against the snapshot's ledger.
    let total: u64 = counts.values().sum();
    assert_eq!(total, obs.recorded);
    let spans: std::collections::BTreeMap<String, u64> =
        obs.spans.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(counts, spans, "per-category counts match the snapshot");
    assert!(
        counts.len() >= 4,
        "the QoS drill exercises at least four span categories, got {counts:?}"
    );

    // The snapshot's counters reconcile with both the spans and the
    // simulation report itself.
    let counters = &obs.metrics.counters;
    assert_eq!(counters.get("requests"), Some(&outcome.report.requests));
    assert_eq!(counters.get("requests"), spans.get("request"));
    assert_eq!(counters.get("qos.retargets"), spans.get("throttle"));
    assert_eq!(
        counters.get("background.completions"),
        spans.get("background")
    );
    assert_eq!(
        counters.get("cache.admissions").copied().unwrap_or(0)
            + counters.get("cache.evictions").copied().unwrap_or(0),
        spans.get("cache").copied().unwrap_or(0)
    );
    assert!(
        obs.metrics.histograms.contains_key("request.worst_ms"),
        "the request latency histogram is registered"
    );

    // The JSONL export covers the same events, one parseable line each.
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count() as u64, obs.recorded);
    for line in jsonl.lines() {
        let event: Value = serde_json::from_str(line).expect("each JSONL line parses");
        assert!(event.get("at_ns").is_some());
    }
}

/// Satellite: trace-twice byte-diff. Every shipped drill, traced twice,
/// exports byte-identical Chrome and JSONL files and bit-identical
/// reports — virtual-time tracing has no nondeterministic inputs.
#[test]
fn every_shipped_drill_traces_byte_identically_twice() {
    for (name, text) in DRILLS {
        let scenario = drill(text, 1_200);
        let (first, first_trace) = scenario
            .run_traced(craid_obs::DEFAULT_CAPACITY, 1)
            .unwrap_or_else(|e| panic!("{name} runs traced: {e}"));
        let (second, second_trace) = scenario
            .run_traced(craid_obs::DEFAULT_CAPACITY, 1)
            .unwrap_or_else(|e| panic!("{name} runs traced: {e}"));
        assert_eq!(
            first_trace.to_chrome_json(),
            second_trace.to_chrome_json(),
            "{name}: chrome exports must be byte-identical"
        );
        assert_eq!(
            first_trace.to_jsonl(),
            second_trace.to_jsonl(),
            "{name}: jsonl exports must be byte-identical"
        );
        assert_eq!(
            first.report.to_json(),
            second.report.to_json(),
            "{name}: traced reports must be byte-identical"
        );
    }
}

/// Satellite: the tracing-off pin. An untraced run's report JSON carries
/// no `obs` key at all (so its bytes match a build without the tracing
/// layer), repeats byte-identically, and — stripped of the snapshot — a
/// traced run produces the very same report: tracing records, it never
/// perturbs.
#[test]
fn tracing_off_reports_omit_obs_and_match_traced_results() {
    for (name, text) in DRILLS {
        let scenario = drill(text, 1_200);
        let untraced = scenario
            .run()
            .unwrap_or_else(|e| panic!("{name} runs: {e}"));
        let untraced_json = untraced.report.to_json();
        assert!(
            !untraced_json.contains("\"obs\""),
            "{name}: untraced reports must omit the obs key entirely"
        );
        let again = scenario.run().unwrap();
        assert_eq!(
            untraced_json,
            again.report.to_json(),
            "{name}: untraced reports must be byte-identical across runs"
        );

        let (traced, _) = scenario.run_traced(craid_obs::DEFAULT_CAPACITY, 1).unwrap();
        let mut stripped = traced.report.clone();
        stripped.obs = None;
        assert_eq!(
            untraced_json,
            stripped.to_json(),
            "{name}: tracing must not change a single reported byte"
        );
    }
}
