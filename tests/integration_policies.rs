//! Integration tests for the replacement policies driven by real (synthetic)
//! workloads through the public `policy_quality` API — the setup of the
//! paper's Tables 2 and 3.

use craid::policy_quality;
use craid_cache::PolicyKind;
use craid_trace::{SyntheticWorkload, WorkloadId};

fn trace(id: WorkloadId) -> craid_trace::Trace {
    SyntheticWorkload::paper_scaled_to(id, 4_000).generate(21)
}

#[test]
fn all_policies_produce_valid_ratios_on_every_workload() {
    for id in WorkloadId::ALL {
        let t = trace(id);
        for policy in PolicyKind::paper_set() {
            let q = policy_quality(policy, &t, 0.05);
            assert!((0.0..=1.0).contains(&q.hit_ratio), "{id}/{policy}");
            assert!((0.0..=1.0).contains(&q.replacement_ratio), "{id}/{policy}");
            assert!(q.capacity_blocks > 0);
            // An access is either a hit or a (possible) insertion; replacements
            // can never exceed misses.
            assert!(
                q.replacement_ratio <= 1.0 - q.hit_ratio + 1e-9,
                "{id}/{policy}: more replacements than misses"
            );
        }
    }
}

#[test]
fn skewed_workloads_hit_more_than_uniform_pressure_would_suggest() {
    // deasna is the paper's most skewed workload: even a 5% cache captures
    // well over half the accesses.
    let q = policy_quality(PolicyKind::Wlru(0.5), &trace(WorkloadId::Deasna), 0.05);
    assert!(
        q.hit_ratio > 0.5,
        "deasna hit ratio {} too low",
        q.hit_ratio
    );
}

#[test]
fn bigger_caches_help_every_policy() {
    let t = trace(WorkloadId::Wdev);
    for policy in PolicyKind::paper_set() {
        let small = policy_quality(policy, &t, 0.01);
        let large = policy_quality(policy, &t, 0.2);
        assert!(
            large.hit_ratio >= small.hit_ratio,
            "{policy}: {} -> {}",
            small.hit_ratio,
            large.hit_ratio
        );
        assert!(large.replacement_ratio <= small.replacement_ratio + 1e-9);
    }
}

#[test]
fn arc_is_at_least_as_good_as_gdsf_everywhere() {
    // The paper's ranking: ARC best, GDSF clearly worst.
    for id in WorkloadId::ALL {
        let t = trace(id);
        let arc = policy_quality(PolicyKind::Arc, &t, 0.05);
        let gdsf = policy_quality(PolicyKind::Gdsf, &t, 0.05);
        assert!(
            arc.hit_ratio + 0.02 >= gdsf.hit_ratio,
            "{id}: GDSF ({}) should not beat ARC ({})",
            gdsf.hit_ratio,
            arc.hit_ratio
        );
    }
}

#[test]
fn wlru_parameter_interpolates_between_lru_and_full_scan() {
    let t = trace(WorkloadId::Home02);
    let lru = policy_quality(PolicyKind::Wlru(0.0), &t, 0.05);
    let half = policy_quality(PolicyKind::Wlru(0.5), &t, 0.05);
    let full = policy_quality(PolicyKind::Wlru(1.0), &t, 0.05);
    // The scan only changes *which* block is evicted, not how often: hit
    // ratios stay within a small band of plain LRU.
    for q in [&half, &full] {
        assert!((q.hit_ratio - lru.hit_ratio).abs() < 0.05);
    }
}
