//! Integration tests: full trace-replay simulations across crates,
//! asserting the qualitative results of the paper's evaluation on small
//! arrays (fast enough for CI).

use craid::{ArrayConfig, Simulation, StrategyKind};
use craid_trace::{SyntheticWorkload, WorkloadId};

fn trace(id: WorkloadId, requests: u64, seed: u64) -> craid_trace::Trace {
    SyntheticWorkload::paper_scaled_to(id, requests).generate(seed)
}

#[test]
fn every_strategy_completes_a_replay_and_reports_sane_numbers() {
    let t = trace(WorkloadId::Wdev, 2_000, 1);
    for strategy in StrategyKind::ALL {
        let config = ArrayConfig::small_test(strategy, t.footprint_blocks());
        let report = Simulation::new(config)
            .try_run(&t)
            .expect("valid configuration");
        assert_eq!(report.requests, t.len() as u64, "{strategy}");
        assert_eq!(report.read.count + report.write.count, report.requests);
        assert!(
            report.write.mean_ms > 0.0,
            "{strategy}: writes must take time"
        );
        assert!(report.write.p99_ms >= report.write.p50_ms);
        assert_eq!(report.craid.is_some(), strategy.is_craid());
        let moved: u64 = report.device_bytes.iter().sum();
        assert!(moved > 0, "{strategy}: devices must see traffic");
    }
}

#[test]
fn craid_cache_absorbs_the_hot_set() {
    let t = trace(WorkloadId::Home02, 3_000, 2);
    let config = ArrayConfig::small_test(StrategyKind::Craid5, t.footprint_blocks());
    let report = Simulation::new(config)
        .try_run(&t)
        .expect("valid configuration");
    let craid = report.craid.unwrap();
    assert!(
        craid.hit_ratio > 0.3,
        "a skewed workload must produce a solid hit ratio, got {}",
        craid.hit_ratio
    );
    assert!(craid.replacement_ratio < 1.0);
}

#[test]
fn larger_cache_partitions_do_not_hurt_and_raise_hit_ratios() {
    let t = trace(WorkloadId::Webusers, 3_000, 3);
    let small_cfg = ArrayConfig::small_test(StrategyKind::Craid5, t.footprint_blocks())
        .with_pc_capacity(t.footprint_blocks() / 20);
    let large_cfg = ArrayConfig::small_test(StrategyKind::Craid5, t.footprint_blocks())
        .with_pc_capacity(t.footprint_blocks() / 2);
    let small = Simulation::new(small_cfg)
        .try_run(&t)
        .expect("valid configuration");
    let large = Simulation::new(large_cfg)
        .try_run(&t)
        .expect("valid configuration");
    let (s, l) = (small.craid.unwrap(), large.craid.unwrap());
    assert!(
        l.hit_ratio >= s.hit_ratio,
        "hit ratio must not drop with a larger PC"
    );
    assert!(
        l.replacement_ratio <= s.replacement_ratio,
        "a larger PC must not evict more"
    );
}

#[test]
fn craid_write_latency_beats_the_plain_baselines() {
    let t = trace(WorkloadId::Wdev, 3_000, 4);
    let craid = Simulation::new(ArrayConfig::small_test(
        StrategyKind::Craid5,
        t.footprint_blocks(),
    ))
    .try_run(&t)
    .expect("valid configuration");
    let raid5 = Simulation::new(ArrayConfig::small_test(
        StrategyKind::Raid5,
        t.footprint_blocks(),
    ))
    .try_run(&t)
    .expect("valid configuration");
    assert!(
        craid.write.mean_ms < raid5.write.mean_ms,
        "CRAID writes ({}) should beat RAID-5 writes ({})",
        craid.write.mean_ms,
        raid5.write.mean_ms
    );
}

#[test]
fn craid_plus_tracks_craid_despite_the_aggregated_archive() {
    let t = trace(WorkloadId::Home02, 3_000, 5);
    let craid5 = Simulation::new(ArrayConfig::small_test(
        StrategyKind::Craid5,
        t.footprint_blocks(),
    ))
    .try_run(&t)
    .expect("valid configuration");
    let craid5p = Simulation::new(ArrayConfig::small_test(
        StrategyKind::Craid5Plus,
        t.footprint_blocks(),
    ))
    .try_run(&t)
    .expect("valid configuration");
    assert!(
        craid5p.write.mean_ms <= craid5.write.mean_ms * 1.5,
        "the archive layout should barely matter once PC absorbs the hot set"
    );
    assert!(craid5p.craid.unwrap().hit_ratio > 0.2);
}

#[test]
fn load_balance_orderings_match_the_paper() {
    // This ordering depends on the unevenly sized RAID sets of the paper's
    // aggregation schedule, so it runs on the paper-shaped 50-disk array.
    let t = trace(WorkloadId::Wdev, 3_000, 6);
    let run = |s| {
        Simulation::new(ArrayConfig::paper(
            s,
            t.footprint_blocks(),
            t.footprint_blocks() / 5,
        ))
        .try_run(&t)
        .expect("valid configuration")
        .load_balance
        .overall_cv
    };
    let raid5 = run(StrategyKind::Raid5);
    let raid5p = run(StrategyKind::Raid5Plus);
    let craid5p = run(StrategyKind::Craid5Plus);
    let craid5ssd = run(StrategyKind::Craid5Ssd);
    assert!(
        raid5p > raid5,
        "aggregated sets distribute load worse than ideal RAID-5"
    );
    assert!(
        craid5p < raid5p,
        "CRAID rebalances the aggregated archive's load"
    );
    assert!(
        craid5ssd > craid5p,
        "funnelling the cache into dedicated SSDs concentrates the load"
    );
}

#[test]
fn reports_serialize_to_json() {
    let t = trace(WorkloadId::Webresearch, 2_000, 7);
    let report = Simulation::new(ArrayConfig::small_test(
        StrategyKind::Craid5Plus,
        t.footprint_blocks(),
    ))
    .try_run(&t)
    .expect("valid configuration");
    let json = report.to_json();
    let back: craid::SimulationReport = serde_json::from_str(&json).unwrap();
    // Full float equality is not preserved by JSON's shortest-representation
    // printing; compare the fields the harness actually consumes.
    assert_eq!(back.strategy, report.strategy);
    assert_eq!(back.requests, report.requests);
    assert_eq!(
        back.craid.unwrap().dirty_evictions,
        report.craid.unwrap().dirty_evictions
    );
    assert!((back.write.mean_ms - report.write.mean_ms).abs() < 1e-9);
    assert_eq!(back.device_bytes, report.device_bytes);
}
