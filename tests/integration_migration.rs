//! Integration tests for the background I/O engine's online expansions:
//! mid-flight migration correctness (no block lost or double-mapped), the
//! instant-expand equivalence of an unbounded rate, hot-first vs.
//! sequential service recovery, and fail-during-upgrade determinism.

use craid::analyze::oracle::{BlockConservation, ConservationLine, ExactlyOneLocation};
use craid::observer::RequestOutcome;
use craid::{
    ArrayConfig, BackgroundPriority, BaselineArray, CraidArray, InvariantOracle, Observer,
    RunEvidence, Scenario, ScheduledEvent, StorageArray, StrategyKind,
};
use craid_diskmodel::{BlockRange, IoKind};
use craid_simkit::SimTime;
use craid_trace::{TraceRecord, WorkloadId};
use proptest::prelude::*;

/// Drains whatever background work an array still has queued.
fn drain(array: &mut dyn StorageArray, mut t: f64) -> f64 {
    while !array.background_idle() && t < 100_000.0 {
        array.pump_background(SimTime::from_secs(t));
        t += 1.0;
    }
    assert!(array.background_idle(), "background work must drain");
    t
}

/// Judges the array's live migration counters against the shared
/// [`BlockConservation`] oracle — the same implementation the model
/// checker runs — returning the violation message, if any.
fn conservation_violation(
    label: &'static str,
    enqueued: u64,
    stats: &craid::MigrationStats,
) -> Option<String> {
    let mut evidence = RunEvidence::default();
    evidence.conservation.push(ConservationLine {
        label,
        enqueued,
        migrated: stats.migrated_blocks,
        superseded: stats.superseded_blocks,
        pending: stats.pending_blocks,
    });
    BlockConservation.check(&evidence)
}

/// Judges one touched block against the shared [`ExactlyOneLocation`]
/// oracle: pending (old slot) and cache-resident (new slot) must be
/// mutually exclusive.
fn colocation_violation(a: &CraidArray, block: u64) -> Option<String> {
    let mut evidence = RunEvidence::default();
    if a.migration_pending(block) && a.monitor().cached_slot(block).is_some() {
        evidence.colocated.push(block);
    }
    ExactlyOneLocation.check(&evidence)
}

proptest! {
    /// An interrupted / mid-flight restripe never loses or double-maps a
    /// block: at every step, every enqueued move is in exactly one of
    /// {migrated, superseded, pending}, and a block the client settled
    /// never reappears as pending.
    #[test]
    fn prop_paced_restripe_accounts_for_every_block(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900), 1..40),
        rate in 100u64..20_000,
    ) {
        let config = ArrayConfig::small_test(StrategyKind::Raid5, 10_000)
            .with_migration_rate(Some(rate as f64));
        let mut a = BaselineArray::new(config).unwrap();
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(
                conservation_violation("baseline-restripe", enqueued, &stats),
                None,
                "every enqueued block is in exactly one bucket at every step"
            );
            if write {
                prop_assert!(!a.migration_pending(block), "writes settle at the new home");
            }
        }
        let t = drain(&mut a, t);
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(conservation_violation("baseline-restripe", enqueued, &stats), None);
        prop_assert_eq!(stats.migrations_completed, 1);
        prop_assert!(stats.migration_secs > 0.0);
        // The array still serves the whole volume afterwards.
        a.submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(9_999, 1)).unwrap();
    }

    /// The CRAID variant of the same invariant, plus: a block is never
    /// simultaneously pending (old slot) and resident in the new cache
    /// partition — every logical block resolves to exactly one location.
    #[test]
    fn prop_paced_craid_migration_never_double_maps(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900), 1..40),
        rate in 5u64..2_000,
    ) {
        let config = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000)
            .with_migration_rate(Some(rate as f64));
        let mut a = CraidArray::new(config).unwrap();
        // Warm the cache (mixed clean/dirty) so the upgrade has work.
        for b in 0..80u64 {
            let kind = if b % 3 == 0 { IoKind::Write } else { IoKind::Read };
            a.submit(SimTime::from_millis(b as f64 * 5.0), kind, BlockRange::new(b * 16 % 9_000, 4)).unwrap();
        }
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(conservation_violation("pc-migration", enqueued, &stats), None);
            // Exactly-one-location: pending (old slot) and resident (new
            // slot) are mutually exclusive, checked on the touched block.
            prop_assert_eq!(colocation_violation(&a, block), None);
        }
        drain(&mut a, t);
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(conservation_violation("pc-migration", enqueued, &stats), None);
        prop_assert_eq!(a.pending_migration_blocks(), 0);
    }
}

/// An unbounded migration rate reproduces the instant-expand reports
/// bit-for-bit: `migration_rate = ∞` and "no knob at all" run the identical
/// atomic-upgrade code path for every strategy.
#[test]
fn infinite_rate_reproduces_instant_expand_reports_bit_for_bit() {
    for strategy in StrategyKind::ALL {
        let base = Scenario::builder()
            .name(format!("instant/{strategy}"))
            .strategy(strategy)
            .workload(WorkloadId::Wdev)
            .requests(1_200)
            .seed(11)
            .small_test()
            .pc_fraction(0.2)
            .expand_at(SimTime::from_secs(30.0), 4)
            .build();
        let mut unbounded = base.clone();
        unbounded.array.migration_rate = Some(f64::INFINITY);
        let instant = base.run().unwrap();
        let infinite = unbounded.run().unwrap();
        assert_eq!(
            instant.report, infinite.report,
            "{strategy}: an unbounded rate must match the instant path"
        );
        assert_eq!(
            instant.expansions[0].migrated_blocks, infinite.expansions[0].migrated_blocks,
            "{strategy}"
        );
        assert_eq!(infinite.expansions[0].enqueued_blocks, 0, "{strategy}");
        assert!(
            !infinite.report.migration.any_migrations(),
            "{strategy}: nothing rides the background engine"
        );
    }
}

/// Accumulates per-request block counts and cache hits inside the recovery
/// window right after the upgrade, to measure how fast the hit ratio
/// recovers while the migration is still streaming.
struct HitRecovery {
    window: (SimTime, SimTime),
    blocks_after: u64,
    hits_after: u64,
}

impl Observer for HitRecovery {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        if record.time >= self.window.0 && record.time < self.window.1 {
            self.blocks_after += record.length;
            self.hits_after += outcome.cache_hit_blocks();
        }
    }
}

fn recovery_scenario(priority: BackgroundPriority, rate: f64) -> Scenario {
    Scenario::builder()
        .name(format!("recovery/{priority:?}"))
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(4_000)
        .seed(14)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(rate)
        .background_priority(priority)
        .expand_at(SimTime::from_secs(30.0), 4)
        .build()
}

/// The CRAID move: at the same migration rate, `HotFirst` restores the
/// steady-state hit ratio measurably faster than `Sequential`, because the
/// hottest blocks regain residency before the client's next touch.
#[test]
fn hot_first_restores_hit_ratio_faster_than_sequential() {
    // Measure the ten seconds right after the upgrade — the window the
    // migration (≈40s at this rate) is still streaming through, where the
    // issue order decides which blocks are already home when the client
    // touches them next.
    let window = (SimTime::from_secs(30.0), SimTime::from_secs(40.0));
    let rate = 40.0;
    let mut fractions = Vec::new();
    for priority in [BackgroundPriority::Sequential, BackgroundPriority::HotFirst] {
        let scenario = recovery_scenario(priority, rate);
        let mut watch = HitRecovery {
            window,
            blocks_after: 0,
            hits_after: 0,
        };
        let outcome = scenario.run_observed(&mut watch).unwrap();
        assert_eq!(outcome.report.migration.migrations_started, 1);
        assert!(watch.blocks_after > 0);
        fractions.push(watch.hits_after as f64 / watch.blocks_after as f64);
    }
    let (sequential, hot_first) = (fractions[0], fractions[1]);
    assert!(
        hot_first > sequential * 1.03,
        "hot-first recovery-window hit fraction ({hot_first:.4}) must measurably beat \
         sequential ({sequential:.4}) at the same rate"
    );
}

/// A disk failure *during* a paced upgrade is legal and deterministic: the
/// repair's rebuild queues behind the migration on the same engine, both
/// complete, and two identical runs produce identical reports.
#[test]
fn fail_during_upgrade_completes_deterministically() {
    let scenario = Scenario::builder()
        .name("fail-during-upgrade")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(4_000)
        .seed(14)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(200.0)
        .background_priority(BackgroundPriority::HotFirst)
        .rebuild_rate(2_000.0)
        .expand_at(SimTime::from_secs(25.0), 4)
        .fail_disk_at(SimTime::from_secs(27.0), 2)
        .repair_disk_at(SimTime::from_secs(32.0), 2)
        .build();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(
        a.report, b.report,
        "fault-laden paced upgrades are deterministic"
    );

    let report = &a.report;
    assert_eq!(report.migration.migrations_started, 1);
    assert_eq!(
        report.migration.migrations_completed, 1,
        "the migration drained despite the failure"
    );
    assert!(
        report.migration.migration_secs > 0.0,
        "a nonzero upgrade window"
    );
    assert_eq!(report.fault.disk_failures, 1);
    assert_eq!(
        report.fault.rebuilds_completed, 1,
        "the rebuild (queued behind the migration) also drained"
    );
    assert!(
        report.fault.degraded_reads > 0,
        "traffic was served while degraded"
    );
    assert!(report.requests > 0);
}

/// The checked-in online-upgrade drill: a paced, hot-first expansion with a
/// failure injected mid-migration. The report must show a nonzero upgrade
/// window with traffic served during it.
#[test]
fn online_upgrade_drill_scenario_shows_the_window() {
    let text = include_str!("../examples/scenarios/online_upgrade_drill.toml");
    let scenario = Scenario::from_toml(text).unwrap();
    assert_eq!(
        scenario.array.background_priority,
        Some(BackgroundPriority::HotFirst)
    );
    let outcome = scenario.run().unwrap();
    let report = &outcome.report;
    assert_eq!(report.migration.migrations_started, 1);
    assert_eq!(report.migration.migrations_completed, 1);
    assert!(
        report.migration.migration_secs > 1.0,
        "the upgrade window is visible at the configured rate, got {}s",
        report.migration.migration_secs
    );
    assert!(report.migration.migrated_blocks > 0);
    assert_eq!(report.fault.rebuilds_completed, 1);
    assert!(
        report.fault.degraded_reads > 0,
        "degraded-but-served traffic during the window"
    );
    assert!(report.requests > 0, "clients were served throughout");
    // Round trip: the drill re-serializes losslessly.
    let back = Scenario::from_toml(&scenario.to_toml().unwrap()).unwrap();
    assert_eq!(back, scenario);
}

/// Trace-swap phases ride the same scenario machinery: the swap is
/// serializable and two runs replay the identical composite.
#[test]
fn phase_swap_scenarios_are_deterministic() {
    let scenario = Scenario::builder()
        .name("phase swap")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(1_000)
        .seed(3)
        .small_test()
        .pc_fraction(0.2)
        .phase_swap_at(
            SimTime::from_secs(40.0),
            "proj takes over",
            craid::WorkloadSource {
                id: WorkloadId::Proj,
                requests: 500,
                seed: 21,
            },
        )
        .build();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.applied_events.len(), 1);
    assert!(a.applied_events[0].description.contains("switch trace"));
    // And the swap survives a TOML round trip.
    let back = Scenario::from_toml(&scenario.to_toml().unwrap()).unwrap();
    assert_eq!(back, scenario);
    let ScheduledEvent::WorkloadPhase {
        workload: Some(source),
        ..
    } = &back.events[0]
    else {
        panic!("the swap survived serialization");
    };
    assert_eq!(source.id, WorkloadId::Proj);
}

/// A short trace must not freeze in-flight background work: the engine is
/// drained after the last record (outside the measurement window), so a
/// slow rebuild still records a finite MTTR and a paced migration reaches
/// `pending == 0` with its upgrade window closed.
#[test]
fn short_trace_drains_in_flight_work_and_records_mttr() {
    let scenario = Scenario::builder()
        .name("short trace, slow maintenance")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(300) // a ~78-second trace; the late, slow work below
        // cannot finish before the last record
        .seed(5)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(10.0)
        .rebuild_rate(20.0)
        .expand_at(SimTime::from_secs(70.0), 4)
        .fail_disk_at(SimTime::from_secs(72.0), 2)
        .repair_disk_at(SimTime::from_secs(74.0), 2)
        .build();
    let outcome = scenario.run().unwrap();
    let report = &outcome.report;
    assert_eq!(
        report.fault.rebuilds_completed, 1,
        "the rebuild drained after the trace instead of freezing"
    );
    assert!(
        report.fault.mttr_secs() > 0.0 && report.fault.mttr_secs().is_finite(),
        "MTTR is finite: {}",
        report.fault.mttr_secs()
    );
    assert_eq!(report.migration.migrations_completed, 1);
    assert_eq!(
        report.migration.pending_blocks, 0,
        "no move is left dangling at the end of the run"
    );
    assert!(
        report.migration.migration_secs > 0.0,
        "the upgrade window closed with a finite span"
    );
    assert!(
        report.background_drain_secs > 0.0,
        "the drain is reported explicitly"
    );
    // Determinism survives the drain path.
    let again = scenario.run().unwrap();
    assert_eq!(again.report, *report);
}

/// A run whose background work finishes during the replay reports a zero
/// drain.
#[test]
fn fully_drained_runs_report_zero_drain() {
    let scenario = Scenario::builder()
        .name("fast migration")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(2_000)
        .seed(5)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(1_000_000.0)
        .expand_at(SimTime::from_secs(5.0), 4)
        .build();
    let outcome = scenario.run().unwrap();
    assert_eq!(outcome.report.migration.migrations_completed, 1);
    assert_eq!(outcome.report.background_drain_secs, 0.0);
}

/// The acceptance scenario of the fair-share scheduler: an in-flight
/// rebuild and a paced migration progress *in the same measurement window*
/// (neither serialises behind the other), and their cumulative issue
/// counts track the configured weights while both are saturated.
#[test]
fn rebuild_and_migration_progress_in_the_same_window_per_the_weights() {
    // Saturated: both rates far above what one pump's batch cap can issue,
    // so every pump splits the cap 3:1 between the rebuild and the
    // restripe.
    let mut config = ArrayConfig::small_test(StrategyKind::Raid5, 10_000)
        .with_migration_rate(Some(1e9))
        .with_rebuild_share(3.0)
        .with_migration_share(1.0);
    config.rebuild_rate_blocks_per_sec = 1e9;
    let mut a = BaselineArray::new(config).unwrap();
    a.fail_disk(SimTime::from_secs(0.5), 3).unwrap();
    a.repair_disk(SimTime::from_secs(1.0), 3).unwrap();
    a.expand(SimTime::from_secs(1.0), 4).unwrap();
    // While both are saturated, every pump advances both, splitting the
    // batch cap 3:1.
    let mut last_rebuilt = 0;
    let mut last_migrated = 0;
    let mut overlap_rebuilt = 0u64;
    let mut overlap_migrated = 0u64;
    for i in 1..=10 {
        let both_live = a.fault_stats().rebuilds_completed == 0
            && a.migration_stats().migrations_completed == 0;
        a.pump_background(SimTime::from_secs(1.0 + i as f64));
        let rebuilt = a.fault_stats().rebuild_write_blocks;
        let migrated = a.migration_stats().migrated_blocks;
        if both_live {
            assert!(rebuilt > last_rebuilt, "rebuild progressed on pump {i}");
            assert!(migrated > last_migrated, "migration progressed on pump {i}");
            if a.fault_stats().rebuilds_completed == 0 {
                // Count only full-overlap pumps into the ratio check.
                overlap_rebuilt += rebuilt - last_rebuilt;
                overlap_migrated += migrated - last_migrated;
            }
        }
        last_rebuilt = rebuilt;
        last_migrated = migrated;
    }
    assert!(
        a.fault_stats().rebuild_write_blocks > 0 && a.migration_stats().migrated_blocks > 0,
        "both streams ran inside the same window"
    );
    // 3:1 weights → per-pump issue counts in ratio while both contended.
    assert!(overlap_rebuilt > 0 && overlap_migrated > 0);
    let ratio = overlap_rebuilt as f64 / overlap_migrated as f64;
    assert!(
        (ratio - 3.0).abs() < 0.1,
        "contended split should honour 3:1 shares, got {ratio}          ({overlap_rebuilt} vs {overlap_migrated})"
    );
}

proptest! {
    /// Under fair share a concurrent rebuild + migration never loses or
    /// double-issues a block, both make progress on every pump while both
    /// have backlog, and the combined issue counts respect the configured
    /// weights within one batch of tolerance.
    #[test]
    fn prop_fair_share_conserves_and_splits_work(
        rebuild_blocks in 1_000u64..40_000,
        migration_blocks in 1_000u64..40_000,
        rebuild_share in 1u32..5,
        migration_share in 1u32..5,
        steps in 1u64..40,
    ) {
        use craid::background::{BackgroundEngine, Batch, TaskKind};
        use craid_diskmodel::BlockRange;

        let mut engine =
            BackgroundEngine::with_shares(rebuild_share as f64, migration_share as f64);
        // Saturating rates: backlog, not pace, limits every poll.
        engine.push_rebuild(SimTime::ZERO, 1, vec![0, 2], vec![BlockRange::new(0, rebuild_blocks)], 1e12);
        engine.push_migration(SimTime::ZERO, (0..migration_blocks).collect(), 1e12);
        let mut rebuilt: u64 = 0;
        let mut seen_migration: Vec<u64> = Vec::new();
        for i in 1..=steps {
            let had_rebuild_backlog = engine.backlog_blocks(TaskKind::Rebuild) > 0;
            let had_migration_backlog = engine.backlog_blocks(TaskKind::ExpansionMigration) > 0;
            let mut step_rebuilt = 0u64;
            let mut step_migrated = 0u64;
            for batch in engine.poll(SimTime::from_secs(i as f64)) {
                match batch {
                    Batch::Rebuild { ranges, .. } => {
                        for r in &ranges {
                            prop_assert!(r.end() <= rebuild_blocks, "no range past the segment");
                        }
                        step_rebuilt += ranges.iter().map(|r| r.len()).sum::<u64>();
                    }
                    Batch::Migration { blocks, .. } => {
                        step_migrated += blocks.len() as u64;
                        seen_migration.extend(blocks);
                    }
                    Batch::Restripe { .. } => prop_assert!(false, "no stream task pushed"),
                }
            }
            if had_rebuild_backlog && had_migration_backlog {
                prop_assert!(step_rebuilt > 0, "rebuild starved at step {}", i);
                prop_assert!(step_migrated > 0, "migration starved at step {}", i);
            }
            rebuilt += step_rebuilt;
        }
        // Conservation: nothing lost, nothing double-issued.
        prop_assert!(rebuilt <= rebuild_blocks);
        prop_assert_eq!(
            rebuilt + engine.backlog_blocks(TaskKind::Rebuild),
            rebuild_blocks
        );
        let mut unique = seen_migration.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), seen_migration.len(), "a block was double-issued");
        prop_assert_eq!(
            seen_migration.len() as u64 + engine.backlog_blocks(TaskKind::ExpansionMigration),
            migration_blocks
        );
        // While *both* were saturated the split follows the weights. Only
        // check the window before either side drained.
        let both_live = rebuilt < rebuild_blocks && (seen_migration.len() as u64) < migration_blocks;
        if both_live && rebuilt > 0 {
            let expected = seen_migration.len() as f64 * rebuild_share as f64
                / migration_share as f64;
            prop_assert!(
                (rebuilt as f64 - expected).abs() <= 2_048.0 + steps as f64,
                "split drifted: rebuilt {} vs migrated {} at {}:{}",
                rebuilt, seen_migration.len(), rebuild_share, migration_share
            );
        }
    }
}

/// A queued second expansion — deferred behind a RAID-5 restripe, or
/// pipelined as a second PC redistribution on CRAID-5+ — replays
/// deterministically and both upgrades complete.
#[test]
fn queued_second_expansion_is_deterministic() {
    for strategy in [StrategyKind::Raid5, StrategyKind::Craid5Plus] {
        let scenario = Scenario::builder()
            .name(format!("double expand/{strategy}"))
            .strategy(strategy)
            .workload(WorkloadId::Wdev)
            .requests(3_000)
            .seed(14)
            .small_test()
            .pc_fraction(0.2)
            .migration_rate(300.0)
            .expand_at(SimTime::from_secs(20.0), 4)
            .expand_at(SimTime::from_secs(22.0), 4)
            .build();
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(
            a.report, b.report,
            "{strategy}: queued expansions replay identically"
        );
        assert_eq!(a.expansions.len(), 2, "{strategy}");
        match strategy {
            StrategyKind::Raid5 => {
                assert!(!a.expansions[0].deferred);
                assert!(
                    a.expansions[1].deferred,
                    "the second restripe queues behind the first"
                );
            }
            _ => {
                assert!(
                    !a.expansions[1].deferred,
                    "aggregated archives pipeline PC redistributions"
                );
            }
        }
        let m = &a.report.migration;
        assert_eq!(m.migrations_started, 2, "{strategy}");
        assert_eq!(
            m.migrations_completed, 2,
            "{strategy}: both upgrades drained"
        );
        assert_eq!(m.pending_blocks, 0, "{strategy}");
    }
}

/// Baselines have no heat signal: a configured `hot-first` silently ran
/// sequentially before, with nothing in the report to tell a reader the
/// knob was a no-op. The *effective* priority is now recorded.
#[test]
fn baseline_hot_first_reports_the_effective_sequential_order() {
    let scenario = Scenario::builder()
        .name("baseline hot-first")
        .strategy(StrategyKind::Raid5)
        .workload(WorkloadId::Wdev)
        .requests(1_500)
        .seed(7)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(500.0)
        .background_priority(BackgroundPriority::HotFirst)
        .expand_at(SimTime::from_secs(10.0), 4)
        .build();
    let outcome = scenario.run().unwrap();
    assert_eq!(
        outcome.report.migration.effective_priority,
        Some(BackgroundPriority::Sequential),
        "the report exposes that hot-first degraded to sequential"
    );
    let json = outcome.report.to_json();
    assert!(
        json.contains("\"sequential\""),
        "the serialized report reads 'sequential'"
    );
    // A CRAID array running the same knob keeps its hot-first order.
    let mut craid = scenario.clone();
    craid.strategy = StrategyKind::Craid5Plus;
    let outcome = craid.run().unwrap();
    assert_eq!(
        outcome.report.migration.effective_priority,
        Some(BackgroundPriority::HotFirst)
    );
}

/// The paced Craid5 upgrade pays a visible archive-restripe cost on its own
/// stats line, while the instant path still reports the archive reshape as
/// free (the paper's accounting, pinned bit-for-bit elsewhere).
#[test]
fn paced_craid5_scenario_reports_archive_restripe_cost() {
    let scenario = Scenario::builder()
        .name("craid5 archive cost")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(3_000)
        .seed(14)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(2_000.0)
        .expand_at(SimTime::from_secs(20.0), 4)
        .build();
    let outcome = scenario.run().unwrap();
    let m = &outcome.report.migration;
    assert_eq!(m.archive_restripes_started, 1);
    assert_eq!(m.archive_restripes_completed, 1);
    assert!(
        m.archive_migrated_blocks + m.archive_superseded_blocks > 1_000,
        "the reshape moved a dataset-scale block count, got {}",
        m.archive_migrated_blocks
    );
    assert!(
        m.archive_restripe_secs > 0.0,
        "a nonzero paced archive-restripe window"
    );
    assert_eq!(m.archive_pending_blocks, 0, "drained by the end of the run");
    // The PC redistribution reported separately, far smaller.
    assert!(m.migrated_blocks + m.superseded_blocks < m.archive_migrated_blocks);
}
