//! Integration tests for the background I/O engine's online expansions:
//! mid-flight migration correctness (no block lost or double-mapped), the
//! instant-expand equivalence of an unbounded rate, hot-first vs.
//! sequential service recovery, and fail-during-upgrade determinism.

use craid::observer::RequestOutcome;
use craid::{
    ArrayConfig, BackgroundPriority, BaselineArray, CraidArray, Observer, Scenario, ScheduledEvent,
    StorageArray, StrategyKind,
};
use craid_diskmodel::{BlockRange, IoKind};
use craid_simkit::SimTime;
use craid_trace::{TraceRecord, WorkloadId};
use proptest::prelude::*;

/// Drains whatever background work an array still has queued.
fn drain(array: &mut dyn StorageArray, mut t: f64) -> f64 {
    while !array.background_idle() && t < 100_000.0 {
        array.pump_background(SimTime::from_secs(t));
        t += 1.0;
    }
    assert!(array.background_idle(), "background work must drain");
    t
}

proptest! {
    /// An interrupted / mid-flight restripe never loses or double-maps a
    /// block: at every step, every enqueued move is in exactly one of
    /// {migrated, superseded, pending}, and a block the client settled
    /// never reappears as pending.
    #[test]
    fn prop_paced_restripe_accounts_for_every_block(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900), 1..40),
        rate in 100u64..20_000,
    ) {
        let config = ArrayConfig::small_test(StrategyKind::Raid5, 10_000)
            .with_migration_rate(Some(rate as f64));
        let mut a = BaselineArray::new(config).unwrap();
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(
                stats.migrated_blocks + stats.superseded_blocks + stats.pending_blocks,
                enqueued,
                "every enqueued block is in exactly one bucket at every step"
            );
            if write {
                prop_assert!(!a.migration_pending(block), "writes settle at the new home");
            }
        }
        let t = drain(&mut a, t);
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(stats.migrated_blocks + stats.superseded_blocks, enqueued);
        prop_assert_eq!(stats.migrations_completed, 1);
        prop_assert!(stats.migration_secs > 0.0);
        // The array still serves the whole volume afterwards.
        a.submit(SimTime::from_secs(t), IoKind::Read, BlockRange::new(9_999, 1)).unwrap();
    }

    /// The CRAID variant of the same invariant, plus: a block is never
    /// simultaneously pending (old slot) and resident in the new cache
    /// partition — every logical block resolves to exactly one location.
    #[test]
    fn prop_paced_craid_migration_never_double_maps(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900), 1..40),
        rate in 5u64..2_000,
    ) {
        let config = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000)
            .with_migration_rate(Some(rate as f64));
        let mut a = CraidArray::new(config).unwrap();
        // Warm the cache (mixed clean/dirty) so the upgrade has work.
        for b in 0..80u64 {
            let kind = if b % 3 == 0 { IoKind::Write } else { IoKind::Read };
            a.submit(SimTime::from_millis(b as f64 * 5.0), kind, BlockRange::new(b * 16 % 9_000, 4)).unwrap();
        }
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(
                stats.migrated_blocks + stats.superseded_blocks + stats.pending_blocks,
                enqueued
            );
            // Exactly-one-location: pending (old slot) and resident (new
            // slot) are mutually exclusive, checked on the touched block.
            prop_assert!(
                !(a.migration_pending(block) && a.monitor().cached_slot(block).is_some()),
                "block {} is both pending and resident", block
            );
        }
        drain(&mut a, t);
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(stats.migrated_blocks + stats.superseded_blocks, enqueued);
        prop_assert_eq!(a.pending_migration_blocks(), 0);
    }
}

/// An unbounded migration rate reproduces the instant-expand reports
/// bit-for-bit: `migration_rate = ∞` and "no knob at all" run the identical
/// atomic-upgrade code path for every strategy.
#[test]
fn infinite_rate_reproduces_instant_expand_reports_bit_for_bit() {
    for strategy in StrategyKind::ALL {
        let base = Scenario::builder()
            .name(format!("instant/{strategy}"))
            .strategy(strategy)
            .workload(WorkloadId::Wdev)
            .requests(1_200)
            .seed(11)
            .small_test()
            .pc_fraction(0.2)
            .expand_at(SimTime::from_secs(30.0), 4)
            .build();
        let mut unbounded = base.clone();
        unbounded.array.migration_rate = Some(f64::INFINITY);
        let instant = base.run().unwrap();
        let infinite = unbounded.run().unwrap();
        assert_eq!(
            instant.report, infinite.report,
            "{strategy}: an unbounded rate must match the instant path"
        );
        assert_eq!(
            instant.expansions[0].migrated_blocks, infinite.expansions[0].migrated_blocks,
            "{strategy}"
        );
        assert_eq!(infinite.expansions[0].enqueued_blocks, 0, "{strategy}");
        assert!(
            !infinite.report.migration.any_migrations(),
            "{strategy}: nothing rides the background engine"
        );
    }
}

/// Accumulates per-request block counts and cache hits inside the recovery
/// window right after the upgrade, to measure how fast the hit ratio
/// recovers while the migration is still streaming.
struct HitRecovery {
    window: (SimTime, SimTime),
    blocks_after: u64,
    hits_after: u64,
}

impl Observer for HitRecovery {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        if record.time >= self.window.0 && record.time < self.window.1 {
            self.blocks_after += record.length;
            self.hits_after += outcome.cache_hit_blocks();
        }
    }
}

fn recovery_scenario(priority: BackgroundPriority, rate: f64) -> Scenario {
    Scenario::builder()
        .name(format!("recovery/{priority:?}"))
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(4_000)
        .seed(14)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(rate)
        .background_priority(priority)
        .expand_at(SimTime::from_secs(30.0), 4)
        .build()
}

/// The CRAID move: at the same migration rate, `HotFirst` restores the
/// steady-state hit ratio measurably faster than `Sequential`, because the
/// hottest blocks regain residency before the client's next touch.
#[test]
fn hot_first_restores_hit_ratio_faster_than_sequential() {
    // Measure the ten seconds right after the upgrade — the window the
    // migration (≈40s at this rate) is still streaming through, where the
    // issue order decides which blocks are already home when the client
    // touches them next.
    let window = (SimTime::from_secs(30.0), SimTime::from_secs(40.0));
    let rate = 40.0;
    let mut fractions = Vec::new();
    for priority in [BackgroundPriority::Sequential, BackgroundPriority::HotFirst] {
        let scenario = recovery_scenario(priority, rate);
        let mut watch = HitRecovery {
            window,
            blocks_after: 0,
            hits_after: 0,
        };
        let outcome = scenario.run_observed(&mut watch).unwrap();
        assert_eq!(outcome.report.migration.migrations_started, 1);
        assert!(watch.blocks_after > 0);
        fractions.push(watch.hits_after as f64 / watch.blocks_after as f64);
    }
    let (sequential, hot_first) = (fractions[0], fractions[1]);
    assert!(
        hot_first > sequential * 1.03,
        "hot-first recovery-window hit fraction ({hot_first:.4}) must measurably beat \
         sequential ({sequential:.4}) at the same rate"
    );
}

/// A disk failure *during* a paced upgrade is legal and deterministic: the
/// repair's rebuild queues behind the migration on the same engine, both
/// complete, and two identical runs produce identical reports.
#[test]
fn fail_during_upgrade_completes_deterministically() {
    let scenario = Scenario::builder()
        .name("fail-during-upgrade")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(4_000)
        .seed(14)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(200.0)
        .background_priority(BackgroundPriority::HotFirst)
        .rebuild_rate(2_000.0)
        .expand_at(SimTime::from_secs(25.0), 4)
        .fail_disk_at(SimTime::from_secs(27.0), 2)
        .repair_disk_at(SimTime::from_secs(32.0), 2)
        .build();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(
        a.report, b.report,
        "fault-laden paced upgrades are deterministic"
    );

    let report = &a.report;
    assert_eq!(report.migration.migrations_started, 1);
    assert_eq!(
        report.migration.migrations_completed, 1,
        "the migration drained despite the failure"
    );
    assert!(
        report.migration.migration_secs > 0.0,
        "a nonzero upgrade window"
    );
    assert_eq!(report.fault.disk_failures, 1);
    assert_eq!(
        report.fault.rebuilds_completed, 1,
        "the rebuild (queued behind the migration) also drained"
    );
    assert!(
        report.fault.degraded_reads > 0,
        "traffic was served while degraded"
    );
    assert!(report.requests > 0);
}

/// The checked-in online-upgrade drill: a paced, hot-first expansion with a
/// failure injected mid-migration. The report must show a nonzero upgrade
/// window with traffic served during it.
#[test]
fn online_upgrade_drill_scenario_shows_the_window() {
    let text = include_str!("../examples/scenarios/online_upgrade_drill.toml");
    let scenario = Scenario::from_toml(text).unwrap();
    assert_eq!(
        scenario.array.background_priority,
        Some(BackgroundPriority::HotFirst)
    );
    let outcome = scenario.run().unwrap();
    let report = &outcome.report;
    assert_eq!(report.migration.migrations_started, 1);
    assert_eq!(report.migration.migrations_completed, 1);
    assert!(
        report.migration.migration_secs > 1.0,
        "the upgrade window is visible at the configured rate, got {}s",
        report.migration.migration_secs
    );
    assert!(report.migration.migrated_blocks > 0);
    assert_eq!(report.fault.rebuilds_completed, 1);
    assert!(
        report.fault.degraded_reads > 0,
        "degraded-but-served traffic during the window"
    );
    assert!(report.requests > 0, "clients were served throughout");
    // Round trip: the drill re-serializes losslessly.
    let back = Scenario::from_toml(&scenario.to_toml().unwrap()).unwrap();
    assert_eq!(back, scenario);
}

/// Trace-swap phases ride the same scenario machinery: the swap is
/// serializable and two runs replay the identical composite.
#[test]
fn phase_swap_scenarios_are_deterministic() {
    let scenario = Scenario::builder()
        .name("phase swap")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(1_000)
        .seed(3)
        .small_test()
        .pc_fraction(0.2)
        .phase_swap_at(
            SimTime::from_secs(40.0),
            "proj takes over",
            craid::WorkloadSource {
                id: WorkloadId::Proj,
                requests: 500,
                seed: 21,
            },
        )
        .build();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.applied_events.len(), 1);
    assert!(a.applied_events[0].description.contains("switch trace"));
    // And the swap survives a TOML round trip.
    let back = Scenario::from_toml(&scenario.to_toml().unwrap()).unwrap();
    assert_eq!(back, scenario);
    let ScheduledEvent::WorkloadPhase {
        workload: Some(source),
        ..
    } = &back.events[0]
    else {
        panic!("the swap survived serialization");
    };
    assert_eq!(source.id, WorkloadId::Proj);
}
