//! Integration tests for the fault subsystem: disk-failure/repair scenario
//! timelines, degraded-mode service quality, rebuild traffic, and the
//! determinism of fault-laden campaigns.

use craid::observer::RequestOutcome;
use craid::{Campaign, Observer, Scenario, ScheduledEvent, StrategyKind};
use craid_diskmodel::IoKind;
use craid_simkit::SimTime;
use craid_trace::{TraceRecord, WorkloadId};

/// Buckets per-request read response times into the three service windows
/// of a fail → repair timeline.
struct WindowedReads {
    t1: SimTime,
    t2: SimTime,
    before: Vec<f64>,
    during: Vec<f64>,
    after: Vec<f64>,
}

impl WindowedReads {
    fn new(t1: SimTime, t2: SimTime) -> Self {
        WindowedReads {
            t1,
            t2,
            before: Vec::new(),
            during: Vec::new(),
            after: Vec::new(),
        }
    }

    fn mean(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len().max(1) as f64
    }
}

impl Observer for WindowedReads {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        if record.kind != IoKind::Read {
            return;
        }
        if record.time < self.t1 {
            self.before.push(outcome.worst_ms);
        } else if record.time < self.t2 {
            self.during.push(outcome.worst_ms);
        } else {
            self.after.push(outcome.worst_ms);
        }
    }
}

/// Acceptance criterion of the fault subsystem: a scenario declaring a
/// `DiskFailure` at t₁ and a `DiskRepair` at t₂ runs end-to-end, degraded
/// reads fan out to the surviving parity-group members, rebuild traffic
/// appears in the metrics, and read response is measurably worse during
/// [t₁, t₂) than before or after.
#[test]
fn degraded_window_has_measurably_worse_read_response() {
    let base = Scenario::builder()
        .name("degraded window")
        .strategy(StrategyKind::Raid5)
        .workload(WorkloadId::Wdev)
        .requests(4_000)
        .seed(11)
        .small_test()
        .pc_fraction(0.2)
        // Fast pace: the rebuild finishes early in the after-repair window,
        // so that window measures a healed array rather than rebuild
        // queueing.
        .rebuild_rate(50_000.0)
        .build();
    let duration = base.trace().duration().as_secs();
    let t1 = SimTime::from_secs(duration / 3.0);
    let t2 = SimTime::from_secs(2.0 * duration / 3.0);
    let mut scenario = base;
    scenario.events.push(ScheduledEvent::disk_failure(t1, 0));
    scenario.events.push(ScheduledEvent::disk_repair(t2, 0));

    let mut windows = WindowedReads::new(t1, t2);
    let outcome = scenario
        .run_observed(&mut windows)
        .expect("the failure scenario runs end-to-end");

    // The timeline applied in order and the fault counters flowed into the
    // report.
    assert_eq!(outcome.applied_events.len(), 2);
    assert!(outcome.applied_events[0]
        .description
        .contains("fail disk 0"));
    assert!(outcome.applied_events[1]
        .description
        .contains("repair disk 0"));
    let fault = outcome.report.fault;
    assert_eq!(fault.disk_failures, 1);
    assert_eq!(fault.disk_repairs, 1);
    assert!(
        fault.degraded_reads > 0,
        "reads were served in degraded mode"
    );
    assert!(
        fault.reconstruction_ios >= 3 * fault.degraded_reads,
        "each degraded read of the 4-disk parity group fans out to 3 peers"
    );
    assert!(fault.rebuild_write_blocks > 0, "rebuild traffic flowed");
    assert!(fault.rebuild_read_blocks >= fault.rebuild_write_blocks);

    // Degraded service is measurably slower than healthy service on both
    // sides of the window.
    assert!(
        windows.before.len() > 100 && windows.during.len() > 100 && windows.after.len() > 100,
        "every window needs a meaningful sample ({} / {} / {})",
        windows.before.len(),
        windows.during.len(),
        windows.after.len()
    );
    assert!(fault.degraded_reads > 50, "the effect needs enough samples");
    let before = WindowedReads::mean(&windows.before);
    let during = WindowedReads::mean(&windows.during);
    let after = WindowedReads::mean(&windows.after);
    assert!(
        during > before,
        "degraded reads must be slower: during = {during:.3} ms, before = {before:.3} ms"
    );
    assert!(
        during > 1.05 * after,
        "service must recover after the repair: during = {during:.3} ms, after = {after:.3} ms"
    );
    assert_eq!(
        fault.rebuilds_completed, 1,
        "the fast-paced rebuild completes within the run"
    );
}

#[test]
fn fail_repair_expand_timeline_is_deterministic_under_campaign() {
    let scenario = Scenario::builder()
        .name("fail repair expand")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Webusers)
        .requests(2_000)
        .seed(21)
        .small_test()
        .pc_fraction(0.2)
        .rebuild_rate(500_000.0)
        .fail_disk_at(SimTime::from_secs(20.0), 1)
        .repair_disk_at(SimTime::from_secs(35.0), 1)
        .expand_at(SimTime::from_secs(60.0), 4)
        .build();

    let first = Campaign::new(vec![scenario.clone()]).run().expect("runs");
    let second = Campaign::new(vec![scenario.clone()]).run().expect("runs");
    assert_eq!(
        first[0].report, second[0].report,
        "a fault-laden timeline must replay bit-identically"
    );
    assert_eq!(first[0].report.fault, second[0].report.fault);
    assert_eq!(first[0].expansions.len(), 1);
    assert_eq!(first[0].applied_events.len(), 3);
    assert!(first[0].report.fault.any_faults());

    // The same scenario without the failure produces different traffic.
    let mut healthy = scenario;
    healthy.events.clear();
    healthy
        .events
        .push(ScheduledEvent::expand(SimTime::from_secs(60.0), 4));
    let third = Campaign::new(vec![healthy]).run().expect("runs");
    assert!(!third[0].report.fault.any_faults());
    assert_ne!(first[0].report, third[0].report);
}

#[test]
fn failure_events_round_trip_through_toml_and_json() {
    let scenario = Scenario::builder()
        .name("fault round trip")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Home02)
        .requests(500)
        .seed(4)
        .small_test()
        .pc_fraction(0.1)
        .rebuild_rate(12_345.5)
        .fail_disk_at(SimTime::from_secs(10.0), 3)
        .repair_disk_at(SimTime::from_secs(20.0), 3)
        .build();

    let toml_text = scenario.to_toml().expect("serializes to TOML");
    assert!(toml_text.contains("disk-failure"));
    assert!(toml_text.contains("disk-repair"));
    assert_eq!(
        Scenario::from_toml(&toml_text).expect("parses"),
        scenario,
        "TOML round trip:\n{toml_text}"
    );

    let json_text = scenario.to_json().expect("serializes to JSON");
    assert_eq!(
        Scenario::from_json(&json_text).expect("parses"),
        scenario,
        "JSON round trip:\n{json_text}"
    );
}

#[test]
fn repairing_a_healthy_disk_fails_the_run_with_context() {
    let scenario = Scenario::builder()
        .name("bad repair")
        .strategy(StrategyKind::Raid5Plus)
        .workload(WorkloadId::Wdev)
        .requests(300)
        .seed(1)
        .small_test()
        .pc_fraction(0.1)
        .repair_disk_at(SimTime::from_secs(5.0), 2)
        .build();
    let err = scenario.run().unwrap_err();
    assert!(matches!(err, craid::CraidError::InvalidFault(_)), "{err}");
}

#[test]
fn checked_in_failure_drill_parses_and_runs() {
    let text = include_str!("../examples/scenarios/failure_drill.toml");
    let mut scenario = Scenario::from_toml(text).expect("the failure drill parses");
    assert_eq!(scenario.strategy, StrategyKind::Craid5);
    assert!(scenario
        .events
        .iter()
        .any(|e| matches!(e, ScheduledEvent::DiskFailure { .. })));
    assert!(scenario
        .events
        .iter()
        .any(|e| matches!(e, ScheduledEvent::DiskRepair { .. })));
    // Scale it down and silence observers to keep the test fast and quiet.
    scenario.workload.requests = 1_500;
    scenario.observers.clear();
    let outcome = scenario.run().expect("the failure drill runs");
    assert_eq!(outcome.applied_events.len(), 4);
    assert_eq!(outcome.expansions.len(), 1);
    let fault = outcome.report.fault;
    assert_eq!(fault.disk_failures, 1);
    assert_eq!(fault.disk_repairs, 1);
    assert!(fault.degraded_reads > 0);
    assert!(fault.rebuild_write_blocks > 0);
}
