//! Integration tests for the `craid-analyze` static-analysis layer: golden
//! pins of the invalid-scenario corpus to their diagnostic codes, the
//! "every shipped drill analyzes clean" contract, diagnostic rendering,
//! and property tests that the analyzer is total (never panics) and sound
//! (scenarios it accepts survive engine setup).

use craid::analyze::codes;
use craid::{
    ActivationPolicy, ArrayPreset, ArraySpec, BaselineArray, CraidArray, Scenario, ScheduledEvent,
    StrategyKind, WorkloadSource,
};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;
use proptest::prelude::*;
use std::path::PathBuf;

/// The invalid corpus, each file pinned to the stable code that rejects it.
/// `include_str!` makes the pin break loudly if a file is renamed.
const INVALID_CORPUS: &[(&str, &str, &str)] = &[
    (
        "bad_shares.toml",
        include_str!("../examples/scenarios/invalid/bad_shares.toml"),
        codes::SHARE_WEIGHT,
    ),
    (
        "double_failure.toml",
        include_str!("../examples/scenarios/invalid/double_failure.toml"),
        codes::DOUBLE_FAILURE,
    ),
    (
        "expand_breaks_parity.toml",
        include_str!("../examples/scenarios/invalid/expand_breaks_parity.toml"),
        codes::EXPAND_BREAKS_PARITY,
    ),
    (
        "parity_mismatch.toml",
        include_str!("../examples/scenarios/invalid/parity_mismatch.toml"),
        codes::PARITY_GROUP,
    ),
    (
        "qos_floor_above_one.toml",
        include_str!("../examples/scenarios/invalid/qos_floor_above_one.toml"),
        codes::QOS_FLOOR,
    ),
    (
        "repair_without_failure.toml",
        include_str!("../examples/scenarios/invalid/repair_without_failure.toml"),
        codes::REPAIR_WITHOUT_FAILURE,
    ),
    (
        "shrink_expand.toml",
        include_str!("../examples/scenarios/invalid/shrink_expand.toml"),
        codes::EXPAND_ADDS_NOTHING,
    ),
    (
        "unreachable_wait_for_repair.toml",
        include_str!("../examples/scenarios/invalid/unreachable_wait_for_repair.toml"),
        codes::UNREACHABLE_ACTIVATION,
    ),
];

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

/// Golden pins: every corpus file parses as a scenario (the TOML itself is
/// well-formed — only the *semantics* are wrong) and analysis rejects it
/// with exactly its documented code.
#[test]
fn invalid_corpus_is_rejected_with_stable_codes() {
    for (name, text, expected) in INVALID_CORPUS {
        let scenario = Scenario::from_toml(text)
            .unwrap_or_else(|err| panic!("{name} must parse as TOML: {err}"));
        let analysis = scenario.analyze();
        assert!(
            analysis.has_errors(),
            "{name} must analyze with errors, got: {analysis}"
        );
        assert!(
            analysis.codes().contains(expected),
            "{name} must be rejected with {expected}, got codes {:?}",
            analysis.codes()
        );
    }
}

/// `Scenario::load` refuses the corpus files and surfaces the same code
/// through `CraidError`, so callers that never look at an `Analysis` still
/// see the stable identifier.
#[test]
fn load_surfaces_the_diagnostic_code() {
    for (name, _, expected) in INVALID_CORPUS {
        let path = scenarios_dir().join("invalid").join(name);
        let err = Scenario::load(&path)
            .map(|_| ())
            .expect_err("an invalid corpus file must not load");
        let diag = err
            .diagnostic()
            .unwrap_or_else(|| panic!("{name}: load error must carry a diagnostic, got {err}"));
        assert_eq!(diag.code, *expected, "{name}: wrong code in {err}");
    }
}

/// The shipped drills are the positive half of the corpus: every TOML in
/// `examples/scenarios/` loads and analyzes with zero diagnostics — not
/// even warnings.
#[test]
fn shipped_drills_analyze_clean() {
    let mut checked = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "toml") != Some(true) {
            continue;
        }
        let scenario = Scenario::load(&path)
            .unwrap_or_else(|err| panic!("{} must load: {err}", path.display()));
        let analysis = scenario.analyze();
        assert!(
            analysis.is_clean(),
            "{} must analyze clean, got: {analysis}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 4, "expected at least the four shipped drills");
}

/// Diagnostic rendering is part of the stable surface: `--check` output and
/// golden CI greps both match on it.
#[test]
fn diagnostics_render_with_code_path_and_help() {
    let (_, text, _) = INVALID_CORPUS
        .iter()
        .find(|(name, _, _)| *name == "repair_without_failure.toml")
        .expect("corpus entry exists");
    let analysis = Scenario::from_toml(text).unwrap().analyze();
    let rendered = analysis.to_string();
    assert!(
        rendered.contains("error[CRAID-E201] events[0].disk:"),
        "rendering must lead with severity, code and path, got: {rendered}"
    );
    assert!(
        rendered.contains("help:"),
        "E201 ships a help line, got: {rendered}"
    );
}

/// Builds a scenario from plain integers so property tests can sweep the
/// whole (mostly nonsensical) input space.
fn scenario_from_raw(
    shape: (u32, usize, u32, u64),
    knobs: (u32, u32, u32, bool),
    raw_events: &[(u8, u64, usize, usize)],
) -> Scenario {
    let (strategy_sel, disks, pc_twentieths, requests) = shape;
    let (share_sel, rate_sel, workload_sel, wait_for_repair) = knobs;
    let strategy = [
        StrategyKind::Raid5,
        StrategyKind::Raid5Plus,
        StrategyKind::Craid5,
        StrategyKind::Craid5Plus,
        StrategyKind::Craid5Ssd,
        StrategyKind::Craid5PlusSsd,
    ][strategy_sel as usize % 6];
    let id =
        [WorkloadId::Wdev, WorkloadId::Webusers, WorkloadId::Cello99][workload_sel as usize % 3];
    let events = raw_events
        .iter()
        .map(|&(kind, at_centi, disk, added)| {
            let at = SimTime::from_secs(at_centi as f64 / 100.0);
            match kind % 4 {
                0 => ScheduledEvent::Expand {
                    at,
                    added_disks: added,
                },
                1 => ScheduledEvent::DiskFailure { at, disk },
                2 => ScheduledEvent::DiskRepair { at, disk },
                _ => ScheduledEvent::WorkloadPhase {
                    at,
                    label: "phase".to_string(),
                    workload: None,
                },
            }
        })
        .collect();
    Scenario {
        name: "prop".to_string(),
        strategy,
        workload: WorkloadSource {
            id,
            requests,
            seed: 14,
        },
        array: ArraySpec {
            preset: ArrayPreset::SmallTest,
            pc_fraction: pc_twentieths as f64 / 20.0,
            policy: None,
            disks: (disks > 0).then_some(disks),
            expansion_sets: None,
            stripe_unit: None,
            seed: None,
            rebuild_rate: None,
            migration_rate: [
                None,
                Some(0.0),
                Some(500.0),
                Some(f64::INFINITY),
                Some(-3.0),
            ][rate_sel as usize % 5],
            background_priority: None,
            rebuild_share: [None, Some(-1.0), Some(0.0), Some(1.0), Some(2.5)]
                [share_sel as usize % 5],
            migration_share: None,
            qos: None,
            activation: wait_for_repair.then_some(ActivationPolicy::WaitForRepair),
        },
        events,
        observers: Vec::new(),
    }
}

proptest! {
    /// The analyzer is total: arbitrary (including absurd) specs and
    /// schedules produce a rendered diagnostic list, never a panic.
    #[test]
    fn prop_analysis_never_panics(
        shape in (0u32..6, 0usize..20, 0u32..41, 0u64..3000),
        knobs in (0u32..5, 0u32..5, 0u32..3, any::<bool>()),
        raw_events in proptest::collection::vec((0u8..4, 0u64..20_000, 0usize..14, 0usize..7), 0..8),
    ) {
        let scenario = scenario_from_raw(shape, knobs, &raw_events);
        let analysis = scenario.analyze();
        // Rendering and the error/warning partitions must also be total.
        let _ = analysis.to_string();
        prop_assert_eq!(
            analysis.errors().count() + analysis.warnings().count(),
            analysis.diagnostics.len()
        );
    }

    /// Soundness: a scenario the analyzer passes without errors survives
    /// engine setup — the resolved config validates and the strategy's
    /// array constructs.
    #[test]
    fn prop_accepted_scenarios_survive_setup(
        shape in (0u32..6, 0usize..20, 1u32..41, 1u64..3000),
        knobs in (0u32..5, 0u32..5, 0u32..3, any::<bool>()),
        raw_events in proptest::collection::vec((0u8..4, 0u64..20_000, 0usize..14, 0usize..7), 0..8),
    ) {
        let scenario = scenario_from_raw(shape, knobs, &raw_events);
        let analysis = scenario.analyze();
        if analysis.has_errors() {
            return;
        }
        // No errors: the dataset is non-empty (E131 would have fired), so
        // the static footprint is well-defined.
        let config = scenario.array_config_for_footprint(scenario.static_footprint_blocks());
        config.validate().expect("analyzer-clean configs validate");
        if scenario.strategy.is_craid() {
            CraidArray::new(config).expect("analyzer-clean CRAID arrays construct");
        } else {
            BaselineArray::new(config).expect("analyzer-clean baseline arrays construct");
        }
    }
}
