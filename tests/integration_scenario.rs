//! Integration tests for the declarative Scenario/Campaign API: the golden
//! equivalence between the campaign path and a direct engine call,
//! file-driven scenarios, campaign determinism, and event-schedule
//! semantics.

use craid::{Campaign, NullObserver, Scenario, ScheduledEvent, Simulation, StrategyKind};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;

/// Golden equivalence: a scenario written in TOML (strategy, workload, pc
/// fraction, two scheduled expansions) loads, executes via `Campaign`, and
/// produces a `SimulationReport` identical to driving
/// `Simulation::try_run_events` directly with the same schedule.
///
/// Honesty note: this pins the full declarative path (TOML parse → config
/// resolution → campaign threading) against the direct programmatic call.
/// It originally pinned the deprecated `run_with_expansions` tuple shim,
/// which was removed once its deprecation window closed — that shim was
/// itself a thin wrapper over the same `try_run_events` engine, so the
/// property guarded here is unchanged: any drift between the two call
/// paths (e.g. a config override lost in `array_config`, or campaign
/// threading perturbing determinism) fails this test.
#[test]
fn toml_scenario_matches_direct_try_run_events() {
    let text = r#"
        name = "golden"
        strategy = "CRAID-5+"

        [workload]
        id = "webusers"
        requests = 2500
        seed = 9

        [array]
        preset = "small-test"
        pc_fraction = 0.2
        disks = 4
        expansion_sets = [4]

        [[events]]
        kind = "expand"
        at_secs = 2000.0
        added_disks = 2

        [[events]]
        kind = "expand"
        at_secs = 4000.0
        added_disks = 2
    "#;
    let scenario = Scenario::from_toml(text).expect("scenario parses");

    // The declarative path: executed through a Campaign.
    let outcomes = Campaign::new(vec![scenario.clone()])
        .run()
        .expect("campaign runs");
    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];

    // The programmatic path: the same experiment driven directly.
    let trace = scenario.trace();
    let config = scenario.array_config(&trace);
    let events = [
        ScheduledEvent::expand(SimTime::from_secs(2000.0), 2),
        ScheduledEvent::expand(SimTime::from_secs(4000.0), 2),
    ];
    let (direct_report, direct_expansions, _) = Simulation::new(config)
        .try_run_events(&trace, &events, &mut NullObserver)
        .expect("direct run succeeds");

    assert_eq!(
        outcome.report, direct_report,
        "the campaign must reproduce the direct engine report bit for bit"
    );
    assert_eq!(outcome.expansions.len(), direct_expansions.len());
    for (new, old) in outcome.expansions.iter().zip(&direct_expansions) {
        assert_eq!(new.added_disks, old.added_disks);
        assert_eq!(new.migrated_blocks, old.migrated_blocks);
        assert_eq!(new.writeback_blocks, old.writeback_blocks);
    }
}

#[test]
fn scenario_survives_toml_and_json_round_trips() {
    let scenario = Scenario::builder()
        .name("round trip")
        .strategy(StrategyKind::Craid5Ssd)
        .workload(WorkloadId::Home02)
        .requests(1_000)
        .seed(5)
        .small_test()
        .pc_fraction(0.25)
        .policy(craid_cache::PolicyKind::Wlru(0.5))
        .stripe_unit(8)
        .expand_at(SimTime::from_secs(10.5), 3)
        .phase_at(SimTime::from_secs(20.0), "phase two")
        .switch_policy_at(SimTime::from_secs(30.0), craid_cache::PolicyKind::Arc)
        .observe(craid::ObserverSpec::Progress { every: 500 })
        .build();

    let toml_text = scenario.to_toml().expect("serializes to TOML");
    assert_eq!(Scenario::from_toml(&toml_text).expect("parses"), scenario);

    let json_text = scenario.to_json().expect("serializes to JSON");
    assert_eq!(Scenario::from_json(&json_text).expect("parses"), scenario);
}

#[test]
fn campaign_same_seed_produces_identical_reports() {
    let scenario = Scenario::builder()
        .name("determinism")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(1_500)
        .seed(77)
        .small_test()
        .pc_fraction(0.2)
        .build();
    let first = Campaign::new(vec![scenario.clone()]).run().expect("runs");
    let second = Campaign::new(vec![scenario.clone()]).run().expect("runs");
    assert_eq!(first[0].report, second[0].report);

    // A different workload seed must actually change the replay.
    let mut reseeded = scenario;
    reseeded.workload.seed = 78;
    let third = Campaign::new(vec![reseeded]).run().expect("runs");
    assert_ne!(
        first[0].report, third[0].report,
        "different seeds must produce different traffic"
    );
}

#[test]
fn equal_time_events_apply_in_declaration_order_even_after_sorting() {
    let at = SimTime::from_secs(3_000.0);
    let early = SimTime::from_secs(1_000.0);
    // Deliberately declare a later-timed event first: the engine sorts by
    // time (stable), so `early` applies first, then the two `at` events in
    // declaration order.
    let scenario = Scenario::builder()
        .name("ordering")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Webusers)
        .requests(2_000)
        .seed(9)
        .small_test()
        .pc_fraction(0.2)
        .disks(4)
        .expansion_sets(vec![4])
        .expand_at(at, 4)
        .expand_at(at, 2)
        .phase_at(early, "early marker")
        .build();
    let outcome = scenario.run().expect("valid scenario");
    let descriptions: Vec<&str> = outcome
        .applied_events
        .iter()
        .map(|e| e.description.as_str())
        .collect();
    assert_eq!(descriptions.len(), 3);
    assert!(descriptions[0].contains("early marker"));
    assert!(descriptions[1].contains("4 disks"));
    assert!(descriptions[2].contains("2 disks"));
    let added: Vec<usize> = outcome.expansions.iter().map(|e| e.added_disks).collect();
    assert_eq!(added, vec![4, 2]);
}

#[test]
fn campaign_sweep_covers_the_matrix_in_input_order() {
    let base = Scenario::builder()
        .name("sweep base")
        .workload(WorkloadId::Wdev)
        .requests(800)
        .seed(3)
        .small_test()
        .build();
    let outcomes = Campaign::sweep(
        &base,
        &[WorkloadId::Wdev, WorkloadId::Webusers],
        &[0.1, 0.3],
        &[StrategyKind::Raid5, StrategyKind::Craid5],
    )
    .run()
    .expect("sweep runs");
    assert_eq!(outcomes.len(), 8);
    // Workload-major, then fraction, then strategy.
    assert_eq!(outcomes[0].workload, WorkloadId::Wdev);
    assert_eq!(outcomes[0].pc_fraction, 0.1);
    assert_eq!(outcomes[0].strategy, StrategyKind::Raid5);
    assert_eq!(outcomes[3].pc_fraction, 0.3);
    assert_eq!(outcomes[3].strategy, StrategyKind::Craid5);
    assert_eq!(outcomes[4].workload, WorkloadId::Webusers);
    // Baselines never report CRAID stats; CRAID cells always do.
    for outcome in &outcomes {
        assert_eq!(
            outcome.report.craid.is_some(),
            outcome.strategy.is_craid(),
            "{}",
            outcome.name
        );
    }
}

#[test]
fn scenarios_with_broken_knobs_fail_instead_of_running_nonsense() {
    // A TOML document that omits pc_fraction must be rejected at parse
    // time, not run with a garbage cache size.
    let missing_fraction = r#"
        name = "no fraction"
        strategy = "CRAID-5"
        [workload]
        id = "wdev"
        requests = 100
        seed = 1
        [array]
        preset = "paper"
    "#;
    let err = Scenario::from_toml(missing_fraction).unwrap_err();
    assert!(err.to_string().contains("pc_fraction"), "{err}");

    // Programmatically-built nonsense is caught by validation at run time.
    let mut scenario = Scenario::builder().requests(100).build();
    scenario.array.pc_fraction = -0.2;
    assert!(matches!(
        scenario.run(),
        Err(craid::CraidError::InvalidConfig(_))
    ));
    scenario.array.pc_fraction = f64::NAN;
    assert!(scenario.run().is_err());
    scenario.array.pc_fraction = 0.1;
    scenario.workload.requests = 0;
    assert!(scenario.run().is_err());
}

#[test]
fn checked_in_example_scenario_parses_and_runs() {
    let text = include_str!("../examples/scenarios/upgrade_drill.toml");
    let mut scenario = Scenario::from_toml(text).expect("the example scenario parses");
    assert_eq!(scenario.strategy, StrategyKind::Craid5Plus);
    assert!(scenario.events.len() >= 3);
    // Scale it down and silence observers to keep the test fast and quiet.
    scenario.workload.requests = 1_000;
    scenario.observers.clear();
    let outcome = scenario.run().expect("the example scenario runs");
    assert_eq!(outcome.expansions.len(), 2);
    assert!(outcome.report.requests > 0);
}
