//! Integration tests for the QoS control subsystem: SLO-driven throttling
//! measurably protects client latency at equal total maintenance work, the
//! pacing floor and block-accounting invariants hold under throttling, the
//! end-of-trace drain still terminates, and the deferred-expansion
//! satellites (observer hook, wait-for-repair activation) behave.

use craid::analyze::oracle::{BlockConservation, ConservationLine, ExactlyOneLocation};
use craid::observer::RequestOutcome;
use craid::qos::SloSpec;
use craid::{
    ActivationPolicy, ArrayConfig, CraidArray, InvariantOracle, Observer, QosStats, RunEvidence,
    Scenario, StorageArray, StrategyKind,
};
use craid_diskmodel::{BlockRange, IoKind};
use craid_simkit::SimTime;
use craid_trace::{TraceRecord, WorkloadId};
use proptest::prelude::*;

/// Accumulates SLO-violation seconds with one fixed definition applied to
/// every run under comparison: the inter-arrival interval ending at a
/// request whose worst-subrange latency exceeded the target counts as
/// violated time.
#[derive(Default)]
struct ViolationMeter {
    target_ms: f64,
    last: Option<SimTime>,
    violated_secs: f64,
    worst_ms: f64,
}

impl ViolationMeter {
    fn new(target_ms: f64) -> Self {
        ViolationMeter {
            target_ms,
            ..ViolationMeter::default()
        }
    }
}

impl Observer for ViolationMeter {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        if let Some(last) = self.last {
            if outcome.worst_ms > self.target_ms {
                self.violated_secs += record.time.saturating_since(last).as_secs();
            }
        }
        self.worst_ms = self.worst_ms.max(outcome.worst_ms);
        self.last = Some(record.time);
    }
}

/// The acceptance scenario: a sequence of three serialized RAID-5
/// restripes (the second and third defer behind the first, mdadm-style)
/// paced hard enough to hurt client latency on the small test array for a
/// sustained stretch of the trace.
fn upgrade_scenario(requests: u64) -> Scenario {
    Scenario::builder()
        .name("qos/upgrade")
        .strategy(StrategyKind::Raid5)
        .workload(WorkloadId::Wdev)
        .requests(requests)
        .seed(7)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(1_500.0)
        .expand_at(SimTime::from_secs(8.0), 4)
        .expand_at(SimTime::from_secs(9.0), 4)
        .expand_at(SimTime::from_secs(10.0), 4)
        .build()
}

/// The headline acceptance test: with an SLO set, SLO-violation seconds
/// measurably drop versus fixed-rate maintenance while the run still moves
/// the same total number of blocks (the throttled tail finishes in the
/// end-of-trace drain instead of trampling the clients).
#[test]
fn slo_throttling_cuts_violation_seconds_at_equal_total_work() {
    const TARGET_MS: f64 = 30.0;

    let fixed = upgrade_scenario(1_500);
    let mut throttled = fixed.clone();
    throttled.name = "qos/upgrade/slo".into();
    throttled.array.qos = Some(
        SloSpec::latency_target(TARGET_MS)
            .with_floor(0.02)
            .with_window(2.0),
    );

    let mut fixed_meter = ViolationMeter::new(TARGET_MS);
    let fixed_outcome = fixed.run_observed(&mut fixed_meter).unwrap();
    let mut slo_meter = ViolationMeter::new(TARGET_MS);
    let slo_outcome = throttled.run_observed(&mut slo_meter).unwrap();

    // Equal total maintenance work: every enqueued restripe move was either
    // migrated or superseded by the end of both runs (the drain finishes
    // the throttled tail), and both runs enqueued the same move set.
    let f = &fixed_outcome.report.migration;
    let s = &slo_outcome.report.migration;
    assert_eq!(f.pending_blocks, 0);
    assert_eq!(s.pending_blocks, 0);
    assert_eq!(
        f.migrated_blocks + f.superseded_blocks,
        s.migrated_blocks + s.superseded_blocks,
        "both runs account for the identical move set"
    );

    // The fixed-rate run violates the SLO for a while; the throttled run
    // measurably less (by the same external meter).
    assert!(
        fixed_meter.violated_secs > 0.3,
        "the unthrottled restripes must hurt clients ({:.2}s violated, worst {:.1}ms)",
        fixed_meter.violated_secs,
        fixed_meter.worst_ms
    );
    assert!(
        slo_meter.violated_secs < 0.5 * fixed_meter.violated_secs,
        "throttling must measurably cut violation time: {:.2}s vs {:.2}s",
        slo_meter.violated_secs,
        fixed_meter.violated_secs
    );

    // QosStats ride on the report: the fixed run carries the disabled
    // default, the throttled run a live controller's record.
    assert_eq!(fixed_outcome.report.qos, QosStats::default());
    let qos = &slo_outcome.report.qos;
    assert!(qos.enabled);
    assert!(qos.any_throttling(), "the controller actually backed off");
    assert!(qos.slo_violation_secs > 0.0);
    assert!(!qos.throttle_timeline.is_empty());
    assert_eq!(qos.timeline_dropped, 0);
    assert!(qos.maintenance_blocks > 0);
    assert!(qos.effective_maintenance_rate > 0.0);
    // The throttled upgrade window is longer — that is the trade the SLO
    // buys client latency with.
    assert!(
        s.migration_secs + slo_outcome.report.background_drain_secs > f.migration_secs,
        "the SLO pays for latency with a longer upgrade window"
    );
}

/// A QoS spec whose targets are never threatened leaves the throttle at the
/// ceiling for the whole run: the controller watches but never intervenes.
#[test]
fn unthreatened_slo_never_throttles() {
    let mut scenario = upgrade_scenario(400);
    scenario.array.qos = Some(SloSpec::latency_target(1e6));
    let outcome = scenario.run().unwrap();
    let qos = &outcome.report.qos;
    assert!(qos.enabled);
    assert!(qos.decisions > 0);
    assert_eq!(qos.throttle_changes, 0);
    assert_eq!(qos.final_scale, 1.0);
    assert!(qos.time_at_ceiling_secs > 0.0);
    assert_eq!(qos.time_at_floor_secs, 0.0);
    assert_eq!(qos.slo_violation_secs, 0.0);
}

/// Scenario determinism survives the controller: the same throttled
/// scenario replayed twice produces the identical report, timeline
/// included.
#[test]
fn throttled_runs_are_deterministic() {
    let mut scenario = upgrade_scenario(800);
    scenario.array.qos = Some(SloSpec::latency_target(30.0).with_window(2.0));
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a.report, b.report);
    assert!(a.report.qos.enabled);
}

/// Judge one accounting snapshot with the model checker's conservation
/// oracle instead of a hand-rolled sum, so the test and `--explore` agree
/// on what "no block lost or double-counted" means.
fn conservation_violation(
    label: &'static str,
    enqueued: u64,
    stats: &craid::MigrationStats,
) -> Option<String> {
    let mut evidence = RunEvidence::default();
    evidence.conservation.push(ConservationLine {
        label,
        enqueued,
        migrated: stats.migrated_blocks,
        superseded: stats.superseded_blocks,
        pending: stats.pending_blocks,
    });
    BlockConservation.check(&evidence)
}

/// Judge a single block's placement with the exactly-one-location oracle.
fn colocation_violation(a: &CraidArray, block: u64) -> Option<String> {
    let mut evidence = RunEvidence::default();
    if a.migration_pending(block) && a.monitor().cached_slot(block).is_some() {
        evidence.colocated.push(block);
    }
    ExactlyOneLocation.check(&evidence)
}

proptest! {
    /// With throttling active and the throttle retargeted at arbitrary
    /// points, a mid-flight restripe still never loses or double-maps a
    /// block, and the end-of-trace drain still terminates.
    #[test]
    fn prop_throttled_restripe_accounts_for_every_block(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900, 0u32..101), 1..40),
        rate in 100u64..20_000,
    ) {
        use craid::BaselineArray;
        let config = ArrayConfig::small_test(StrategyKind::Raid5, 10_000)
            .with_migration_rate(Some(rate as f64))
            .with_qos(SloSpec::latency_target(25.0).with_floor(0.05));
        let mut a = BaselineArray::new(config).unwrap();
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms, scale_pct) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            // An adversarial controller: retarget to an arbitrary scale
            // (including 0, which clamps to the floor) before the pump.
            a.set_background_throttle(now, scale_pct as f64 / 100.0);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(
                conservation_violation("baseline-restripe", enqueued, &stats),
                None,
                "every enqueued block is in exactly one bucket at every step"
            );
            if write {
                prop_assert!(!a.migration_pending(block), "writes settle at the new home");
            }
        }
        // Drain terminates even from the floor (the floor is positive by
        // construction, so the pace-completion eta stays finite).
        while !a.background_idle() {
            prop_assert!(t < 100_000.0, "the throttled drain must terminate");
            if let Some(eta) = a.background_drain_eta() {
                t = t.max(eta.as_secs());
            }
            a.pump_background(SimTime::from_secs(t));
            t += 0.001;
        }
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(conservation_violation("baseline-restripe", enqueued, &stats), None);
        prop_assert_eq!(stats.migrations_completed, 1);
    }

    /// The CRAID variant: under arbitrary retargets a paced PC
    /// redistribution never leaves a block both pending (old slot) and
    /// resident (new slot) — exactly one location at every step.
    #[test]
    fn prop_throttled_craid_migration_never_double_maps(
        ops in proptest::collection::vec((0u64..10_000, any::<bool>(), 1u64..900, 0u32..101), 1..30),
        rate in 5u64..2_000,
    ) {
        let config = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000)
            .with_migration_rate(Some(rate as f64))
            .with_qos(SloSpec::latency_target(25.0).with_floor(0.1));
        let mut a = CraidArray::new(config).unwrap();
        for b in 0..80u64 {
            let kind = if b % 3 == 0 { IoKind::Write } else { IoKind::Read };
            a.submit(SimTime::from_millis(b as f64 * 5.0), kind, BlockRange::new(b * 16 % 9_000, 4)).unwrap();
        }
        let report = a.expand(SimTime::from_secs(1.0), 4).unwrap();
        let enqueued = report.enqueued_blocks;
        prop_assert!(enqueued > 0);
        let mut t = 1.0;
        for (block, write, dt_ms, scale_pct) in ops {
            t += dt_ms as f64 / 1000.0;
            let now = SimTime::from_secs(t);
            a.set_background_throttle(now, scale_pct as f64 / 100.0);
            a.pump_background(now);
            let kind = if write { IoKind::Write } else { IoKind::Read };
            a.submit(now, kind, BlockRange::new(block, 1)).unwrap();
            let stats = a.migration_stats();
            prop_assert_eq!(
                conservation_violation("pc-migration", enqueued, &stats),
                None
            );
            prop_assert_eq!(
                colocation_violation(&a, block),
                None,
                "block {} is both pending and resident", block
            );
        }
        while !a.background_idle() {
            prop_assert!(t < 100_000.0, "the throttled drain must terminate");
            if let Some(eta) = a.background_drain_eta() {
                t = t.max(eta.as_secs());
            }
            a.pump_background(SimTime::from_secs(t));
            t += 0.001;
        }
        let stats = a.migration_stats();
        prop_assert_eq!(stats.pending_blocks, 0);
        prop_assert_eq!(conservation_violation("pc-migration", enqueued, &stats), None);
    }

    /// The engine never paces below the configured floor: whatever scales
    /// an adversarial controller requests, after time T at least
    /// `floor × rate × T` blocks (minus one batch of slack) have issued.
    #[test]
    fn prop_engine_never_paces_below_the_floor(
        scales in proptest::collection::vec(0u32..101, 1..30),
        rate in 50u64..500,
    ) {
        use craid::BackgroundEngine;
        use craid::background::TaskKind;
        const FLOOR: f64 = 0.2;
        let mut engine = BackgroundEngine::new();
        engine.attach_throttle(FLOOR);
        let total = 1_000_000u64;
        engine.push_migration(SimTime::ZERO, (0..total).collect(), rate as f64);
        let mut t = 0.0;
        let mut issued = 0u64;
        for scale_pct in scales {
            engine.set_throttle(SimTime::from_secs(t), scale_pct as f64 / 100.0);
            let scale = engine.throttle_scale().unwrap();
            prop_assert!((FLOOR..=1.0).contains(&scale), "scale {} escaped [floor, 1]", scale);
            t += 1.0;
            for batch in engine.poll(SimTime::from_secs(t)) {
                if let craid::background::Batch::Migration { blocks, .. } = batch {
                    issued += blocks.len() as u64;
                }
            }
            let floor_target = (FLOOR * rate as f64 * t) as u64;
            prop_assert!(
                issued + craid::background::MAX_BATCH_BLOCKS >= floor_target,
                "issued {} after {}s is below the floor pace {}",
                issued, t, floor_target
            );
        }
        prop_assert!(engine.has_task(TaskKind::ExpansionMigration));
        // The drain eta stays finite and ahead: jumping there (and nudging
        // past f64 rounding) finishes the work from any throttle state.
        let eta = engine.drain_eta().expect("work remains");
        prop_assert!(eta.as_secs().is_finite());
    }
}

// ---------------------------------------------------------------------------
// Deferred-expansion satellites: observer hook + wait-for-repair policy.
// ---------------------------------------------------------------------------

/// Captures the deferred-activation observer hook.
#[derive(Default)]
struct ActivationLog {
    seen: Vec<(f64, usize)>,
}

impl Observer for ActivationLog {
    fn on_deferred_activation(&mut self, at: SimTime, added_disks: usize) {
        self.seen.push((at.as_secs(), added_disks));
    }
}

/// A queued ideal-archive expansion activating on drain fires the new
/// observer hook with the activation instant and disk count.
#[test]
fn deferred_activation_fires_the_observer_hook() {
    let scenario = Scenario::builder()
        .name("qos/deferred-hook")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(600)
        .seed(3)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(400.0)
        .expand_at(SimTime::from_secs(2.0), 4)
        .expand_at(SimTime::from_secs(3.0), 4)
        .build();
    let mut log = ActivationLog::default();
    let outcome = scenario.run_observed(&mut log).unwrap();
    assert_eq!(outcome.expansions.len(), 2);
    assert!(outcome.expansions[1].deferred, "the second expand queued");
    assert_eq!(log.seen.len(), 1, "exactly one deferred activation fired");
    let (at, added) = log.seen[0];
    assert_eq!(added, 4);
    assert!(at >= 3.0, "activation happens after the deferral");
    let stats = &outcome.report.migration;
    assert_eq!(stats.archive_restripes_started, 2);
    assert_eq!(stats.archive_restripes_completed, 2);
}

/// `activation = "wait-for-repair"`: an activation that comes due on a
/// degraded array holds until the rebuild completes, then fires (and the
/// hook reports the later instant).
#[test]
fn wait_for_repair_holds_activation_until_the_array_heals() {
    let mut config = ArrayConfig::small_test(StrategyKind::Craid5, 10_000)
        .with_migration_rate(Some(100_000.0))
        .with_activation(ActivationPolicy::WaitForRepair);
    config.rebuild_rate_blocks_per_sec = 50.0; // the rebuild outlasts the restripe
    let mut a = CraidArray::new(config).unwrap();
    a.expand(SimTime::from_secs(1.0), 4).unwrap();
    let second = a.expand(SimTime::from_secs(1.5), 4).unwrap();
    assert!(second.deferred);
    a.fail_disk(SimTime::from_secs(2.0), 2).unwrap();
    a.repair_disk(SimTime::from_secs(2.5), 2).unwrap();
    let mut t = 3.0;
    // Pump until the restripe has drained; the activation must keep
    // holding while the rebuild is still streaming.
    while a.migration_stats().archive_restripes_completed == 0 && t < 5_000.0 {
        a.pump_background(SimTime::from_secs(t));
        t += 0.5;
    }
    assert_eq!(a.migration_stats().archive_restripes_completed, 1);
    // Precondition of the whole test: the rebuild must outlast the
    // restripe, or the held-activation assertions below would be vacuous.
    assert_eq!(
        a.fault_stats().rebuilds_completed,
        0,
        "the rebuild must still be streaming when the restripe drains"
    );
    assert_eq!(a.disk_count(), 12, "activation holds while degraded");
    assert_eq!(a.deferred_expansions(), 1);
    assert!(a.take_activations().is_empty());
    while a.fault_stats().rebuilds_completed == 0 && t < 5_000.0 {
        a.pump_background(SimTime::from_secs(t));
        t += 0.5;
    }
    // The pump that completed the rebuild released the activation.
    a.pump_background(SimTime::from_secs(t));
    assert_eq!(a.disk_count(), 16, "the queued expansion activated");
    assert_eq!(a.deferred_expansions(), 0);
    let activations = a.take_activations();
    assert_eq!(activations.len(), 1);
    assert_eq!(activations[0].added_disks, 4);
    assert!(activations[0].at >= SimTime::from_secs(2.5));
}

/// A deferred expansion blocked by wait-for-repair on a disk that is never
/// repaired does not hang the end-of-trace drain: the engine drains, the
/// array reports idle, and the queued expansion survives visibly.
#[test]
fn wait_for_repair_with_unrepaired_disk_does_not_hang_the_drain() {
    let scenario = Scenario::builder()
        .name("qos/blocked-activation")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(400)
        .seed(3)
        .small_test()
        .pc_fraction(0.2)
        .migration_rate(5_000.0)
        .activation(ActivationPolicy::WaitForRepair)
        .expand_at(SimTime::from_secs(1.0), 4)
        .expand_at(SimTime::from_secs(1.5), 4)
        .fail_disk_at(SimTime::from_secs(2.0), 2)
        .build();
    let mut log = ActivationLog::default();
    let outcome = scenario.run_observed(&mut log).unwrap();
    // The run terminated (this test completing is the point) with the
    // activation still blocked: no hook fired, one restripe completed.
    assert!(log.seen.is_empty(), "the blocked activation never fired");
    assert_eq!(outcome.report.migration.archive_restripes_started, 1);
    assert_eq!(outcome.report.migration.archive_restripes_completed, 1);
    assert_eq!(outcome.report.fault.disk_failures, 1);
    assert_eq!(outcome.report.fault.rebuilds_completed, 0);
}

/// The default activation policy still activates unconditionally on a
/// degraded array — pinned so the satellite cannot change existing
/// behaviour.
#[test]
fn immediate_activation_still_fires_on_a_degraded_array() {
    let config =
        ArrayConfig::small_test(StrategyKind::Craid5, 10_000).with_migration_rate(Some(100_000.0));
    let mut a = CraidArray::new(config).unwrap();
    a.expand(SimTime::from_secs(1.0), 4).unwrap();
    let second = a.expand(SimTime::from_secs(1.5), 4).unwrap();
    assert!(second.deferred);
    a.fail_disk(SimTime::from_secs(2.0), 2).unwrap();
    let mut t = 3.0;
    while a.migration_stats().archive_restripes_completed == 0 && t < 5_000.0 {
        a.pump_background(SimTime::from_secs(t));
        t += 0.5;
    }
    a.pump_background(SimTime::from_secs(t));
    assert_eq!(a.disk_count(), 16, "immediate activation ignores health");
    assert_eq!(a.take_activations().len(), 1);
}

/// A scheduled `expand` whose timeline also carries a `[qos]` spec keeps
/// the whole event machinery working end to end (TOML scenario → throttled
/// run → report), including serde of the new `[array.qos]` table.
#[test]
fn toml_scenario_with_qos_round_trips_and_runs() {
    let text = r#"
        name = "qos drill (test)"
        strategy = "RAID-5"

        [workload]
        id = "wdev"
        requests = 400
        seed = 7

        [array]
        preset = "small-test"
        pc_fraction = 0.2
        migration_rate = 20000.0

        [array.qos]
        target_latency_ms = 30.0
        floor = 0.05
        window_secs = 2.0

        [[events]]
        kind = "expand"
        at_secs = 4.0
        added_disks = 4
    "#;
    let scenario = Scenario::from_toml(text).unwrap();
    let round = Scenario::from_toml(&scenario.to_toml().unwrap()).unwrap();
    assert_eq!(round, scenario);
    let outcome = scenario.run().unwrap();
    assert!(outcome.report.qos.enabled);
    assert!(outcome.report.qos.decisions > 0);
}
