//! Sharded-replay determinism: for every shipped drill scenario, the
//! report produced with the device-metrics pipeline sharded across 2, 4
//! and 8 worker threads must be **byte-identical** to the single-threaded
//! report — floating-point metrics included. This is the contract that
//! lets the throughput benchmark and `Campaign` sweeps use threads freely
//! without perturbing any pinned number.

use craid::{NullObserver, Scenario};

/// Every scenario TOML shipped under `examples/scenarios/`.
fn shipped_drills() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios");
    let mut drills: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable scenario dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
            (name, text)
        })
        .collect();
    drills.sort();
    assert!(
        drills.len() >= 4,
        "expected the shipped drill set, found {} TOML file(s) in {}",
        drills.len(),
        dir.display()
    );
    drills
}

#[test]
fn sharded_replay_is_byte_identical_on_every_shipped_drill() {
    for (name, text) in shipped_drills() {
        let scenario = Scenario::from_toml(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
        let trace = scenario.trace();
        let reference = scenario
            .run_on(&trace, &mut NullObserver)
            .unwrap_or_else(|e| panic!("running {name} single-threaded: {e}"))
            .report
            .to_json();
        for threads in [2usize, 4, 8] {
            let sharded = scenario
                .run_on_sharded(&trace, &mut NullObserver, threads)
                .unwrap_or_else(|e| panic!("running {name} at {threads} threads: {e}"))
                .report
                .to_json();
            assert_eq!(
                sharded, reference,
                "{name}: report at {threads} threads diverges from the single-threaded report"
            );
        }
    }
}

#[test]
fn run_sharded_matches_run_end_to_end() {
    // The public convenience wrappers (fresh trace each call) agree too.
    let (_, text) = shipped_drills()
        .into_iter()
        .find(|(name, _)| name == "online_upgrade_drill")
        .expect("online_upgrade_drill ships");
    let scenario = Scenario::from_toml(&text).unwrap();
    let single = scenario.run().unwrap().report.to_json();
    let sharded = scenario.run_sharded(3).unwrap().report.to_json();
    assert_eq!(sharded, single);
}
